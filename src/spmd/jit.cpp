#include "spmd/jit.hpp"

#include <cstdio>
#include <sstream>

#include "emit/c_expr.hpp"
#include "obs/metrics.hpp"
#include "spmd/comm_schedule.hpp"
#include "support/toolchain.hpp"

namespace vcal::spmd {

std::string JitStats::str() const {
  obs::MetricsRegistry reg;
  obs::collect(reg, *this);
  return reg.line();
}

// ---- source emission -------------------------------------------------

namespace {

std::string cmp_to_c(prog::Guard::Cmp c) {
  switch (c) {
    case prog::Guard::Cmp::LT: return "<";
    case prog::Guard::Cmp::LE: return "<=";
    case prog::Guard::Cmp::GT: return ">";
    case prog::Guard::Cmp::GE: return ">=";
    case prog::Guard::Cmp::EQ: return "==";
    case prog::Guard::Cmp::NE: return "!=";
  }
  return "<";
}

/// "if (guard) slot = rhs;\n" with the given ref/loop-variable C
/// bindings. expr_to_c parenthesizes every operation in the bytecode's
/// left-then-right operand order, and C comparisons carry the same IEEE
/// NaN semantics as CompiledGuard::holds, so the store is bit-identical
/// to the interpreter.
std::string guarded_store(const prog::Clause& clause,
                          const std::vector<std::string>& refs,
                          const std::vector<std::string>& loops,
                          const std::string& slot,
                          const std::string& indent) {
  std::string rhs = emit::expr_to_c(clause.rhs, refs, loops);
  if (!clause.guard) return indent + slot + " = " + rhs + ";\n";
  std::string g = "(" + emit::expr_to_c(clause.guard->lhs, refs, loops) +
                  " " + cmp_to_c(clause.guard->cmp) + " " +
                  emit::expr_to_c(clause.guard->rhs, refs, loops) + ")";
  return indent + "if " + g + " " + slot + " = " + rhs + ";\n";
}

}  // namespace

std::string jit_source(const prog::Clause& clause) {
  const int R = static_cast<int>(clause.refs.size());
  const int L = static_cast<int>(clause.loops.size());
  const int I = L - 1;
  std::ostringstream os;
  os << "// vcal jit kernel (generated, content-addressed - do not edit)\n"
     << "// clause: " << clause.str() << "\n\n";

  std::vector<std::string> refs(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) refs[static_cast<std::size_t>(r)] =
      "r" + std::to_string(r);
  auto loops_with_inner = [&](const std::string& inner_expr) {
    std::vector<std::string> lv(static_cast<std::size_t>(L));
    for (int d = 0; d < L; ++d)
      lv[static_cast<std::size_t>(d)] =
          d == I ? inner_expr : "outer[" + std::to_string(d) + "]";
    return lv;
  };

  // --- the fused strided loop -------------------------------------
  os << "void vcal_jit_fused(double* out, long long la0, long long "
        "la_stride,\n"
        "                    const double* const* rows, const long long* "
        "raddr0,\n"
        "                    const long long* rstride, const long long* "
        "outer,\n"
        "                    long long v0, long long vstride, long long n) "
        "{\n"
        "  long long k;\n";
  for (int r = 0; r < R; ++r)
    os << "  long long a" << r << " = raddr0[" << r << "];\n";
  os << "  (void)outer; (void)v0;\n";
  if (R == 0) os << "  (void)rows; (void)raddr0; (void)rstride;\n";
  // Unit-stride specialization: with every stride a literal 1 the host
  // compiler can vectorize the loop; the generic branch computes the
  // same values element by element.
  os << "  if (la_stride == 1 && vstride == 1";
  for (int r = 0; r < R; ++r) os << " && rstride[" << r << "] == 1";
  os << ") {\n"
        "    for (k = 0; k < n; ++k) {\n";
  for (int r = 0; r < R; ++r)
    os << "      double r" << r << " = rows[" << r << "][a" << r
       << " + k];\n";
  os << guarded_store(clause, refs, loops_with_inner("(v0 + k)"),
                      "out[la0 + k]", "      ");
  os << "    }\n"
        "  } else {\n"
        "    long long la = la0;\n"
        "    long long v = v0;\n"
        "    (void)v;\n"
        "    for (k = 0; k < n; ++k) {\n";
  for (int r = 0; r < R; ++r)
    os << "      double r" << r << " = rows[" << r << "][a" << r << "]; a"
       << r << " += rstride[" << r << "];\n";
  os << guarded_store(clause, refs, loops_with_inner("v"), "out[la]",
                      "      ");
  os << "      la += la_stride;\n"
        "      v += vstride;\n"
        "    }\n"
        "  }\n"
        "}\n\n";

  // --- one replay segment of a compiled schedule ------------------
  std::vector<std::string> rloops(static_cast<std::size_t>(L));
  for (int d = 0; d < L; ++d)
    rloops[static_cast<std::size_t>(d)] =
        "vals[e*" + std::to_string(L) + " + " + std::to_string(d) + "]";
  os << "void vcal_jit_replay(double* out, const double* const* bases,\n"
        "                     const long long* ids, const long long* "
        "offs,\n"
        "                     const long long* slots, const long long* "
        "vals,\n"
        "                     long long n) {\n"
        "  long long e;\n"
        "  (void)bases; (void)ids; (void)offs; (void)vals;\n"
        "  for (e = 0; e < n; ++e) {\n";
  for (int r = 0; r < R; ++r)
    os << "    double r" << r << " = bases[ids[e*" << R << " + " << r
       << "]][offs[e*" << R << " + " << r << "]];\n";
  os << guarded_store(clause, refs, rloops, "out[slots[e]]", "    ");
  os << "  }\n"
        "}\n";
  return os.str();
}

std::string jit_fingerprint(const std::string& source) {
  // The JIT compiles with no extra flags, so its content address is
  // the toolchain fingerprint over the bare source (tests use this to
  // locate <fp>.c/.so in the cache directory).
  return NativeToolchain::fingerprint(source);
}

// ---- replay flattening ----------------------------------------------

namespace {

/// Minimum constant-stride run length worth a vcal_jit_fused call;
/// anything shorter stays in the surrounding replay segment.
constexpr i64 kMinFusedRun = 8;

struct OpRead {
  bool ok = false;  // false: halo operand — the rank stays on bytecode
  i64 id = 0;
  i64 off = 0;
};

/// Builds one rank's segment list. op_of(e, r) describes operand r of
/// element e. Covers all n elements or leaves rp.any == false.
template <typename OpOf>
void build_rank_prog(JitRankProg& rp, i64 n, int R, int L,
                     const i64* slots, const i64* vals, OpOf&& op_of) {
  rp.any = false;
  rp.segs.clear();
  rp.ids.assign(static_cast<std::size_t>(n * R), 0);
  rp.offs.assign(static_cast<std::size_t>(n * R), 0);
  if (n == 0) {
    rp.any = true;  // trivially covered: nothing to execute
    return;
  }
  // A guarded-OOB slot (-1) must raise the tagged path's fault, and a
  // halo operand needs a hash probe: either keeps the rank on bytecode.
  std::vector<char> direct(static_cast<std::size_t>(n), 0);
  for (i64 e = 0; e < n; ++e) {
    if (slots[e] < 0) return;
    bool d = true;
    for (int r = 0; r < R; ++r) {
      OpRead o = op_of(e, r);
      if (!o.ok) return;
      rp.ids[static_cast<std::size_t>(e * R + r)] = o.id;
      rp.offs[static_cast<std::size_t>(e * R + r)] = o.off;
      if (o.id != r) d = false;
    }
    direct[static_cast<std::size_t>(e)] = d ? 1 : 0;
  }
  const int I = L - 1;
  auto push_replay = [&](i64 at) {
    if (!rp.segs.empty() && !rp.segs.back().fused &&
        rp.segs.back().e0 + rp.segs.back().n == at) {
      ++rp.segs.back().n;
      return;
    }
    JitSegment s;
    s.e0 = at;
    s.n = 1;
    rp.segs.push_back(std::move(s));
  };
  i64 e = 0;
  while (e < n) {
    if (direct[static_cast<std::size_t>(e)]) {
      // Grow the maximal run anchored at e whose offsets, LHS slot, and
      // innermost loop value all advance by constants while the outer
      // loop values stay fixed.
      std::vector<i64> doff(static_cast<std::size_t>(R), 0);
      i64 dslot = 0, dv = 0;
      bool have_delta = false;
      i64 j = e;
      while (j + 1 < n && direct[static_cast<std::size_t>(j + 1)]) {
        bool okp = true;
        for (int d = 0; d < I && okp; ++d)
          okp = vals[(j + 1) * L + d] == vals[e * L + d];
        if (okp && !have_delta) {
          for (int r = 0; r < R; ++r)
            doff[static_cast<std::size_t>(r)] =
                rp.offs[static_cast<std::size_t>((j + 1) * R + r)] -
                rp.offs[static_cast<std::size_t>(j * R + r)];
          dslot = slots[j + 1] - slots[j];
          dv = vals[(j + 1) * L + I] - vals[j * L + I];
          have_delta = true;
        } else if (okp) {
          for (int r = 0; r < R && okp; ++r)
            okp = rp.offs[static_cast<std::size_t>((j + 1) * R + r)] -
                      rp.offs[static_cast<std::size_t>(j * R + r)] ==
                  doff[static_cast<std::size_t>(r)];
          okp = okp && slots[j + 1] - slots[j] == dslot &&
                vals[(j + 1) * L + I] - vals[j * L + I] == dv;
        }
        if (!okp) break;
        ++j;
      }
      const i64 len = j - e + 1;
      if (len >= kMinFusedRun) {
        JitSegment s;
        s.fused = true;
        s.e0 = e;
        s.n = len;
        s.la0 = slots[e];
        s.la_stride = dslot;
        s.v0 = vals[e * L + I];
        s.vstride = dv;
        s.raddr0.resize(static_cast<std::size_t>(R));
        for (int r = 0; r < R; ++r)
          s.raddr0[static_cast<std::size_t>(r)] =
              rp.offs[static_cast<std::size_t>(e * R + r)];
        s.rstride = doff;
        rp.segs.push_back(std::move(s));
        e = j + 1;
        continue;
      }
    }
    push_replay(e);
    ++e;
  }
  rp.any = true;
}

}  // namespace

const JitReplayProg* JitState::replay_prog(const CommSchedule& s) {
  std::lock_guard<std::mutex> lk(m_);
  if (replay_ && replay_->sched == &s) return replay_.get();
  auto prog = std::make_unique<JitReplayProg>();
  prog->sched = &s;
  prog->ranks.resize(static_cast<std::size_t>(s.procs));
  for (i64 p = 0; p < s.procs; ++p) {
    const RecvPlan& rv = s.recv[static_cast<std::size_t>(p)];
    build_rank_prog(
        prog->ranks[static_cast<std::size_t>(p)], rv.n, s.nrefs, s.nloops,
        rv.lhs_slot.data(), rv.vals.data(), [&](i64 e, int r) -> OpRead {
          const RefOp& op = rv.ops[static_cast<std::size_t>(e * s.nrefs + r)];
          switch (op.kind) {
            case RefOp::Kind::Local:
              return {true, op.ref, op.a};
            case RefOp::Kind::Remote:
              return {true, s.nrefs + op.a, op.b};
            case RefOp::Kind::Halo:
              return {false, 0, 0};
          }
          return {false, 0, 0};
        });
  }
  replay_ = std::move(prog);
  return replay_.get();
}

const JitReplayProg* JitState::replay_prog(const GatherSchedule& s) {
  std::lock_guard<std::mutex> lk(m_);
  if (replay_ && replay_->sched == &s) return replay_.get();
  auto prog = std::make_unique<JitReplayProg>();
  prog->sched = &s;
  prog->ranks.resize(s.ranks.size());
  for (std::size_t p = 0; p < s.ranks.size(); ++p) {
    const GatherSchedule::RankGather& rg = s.ranks[p];
    build_rank_prog(prog->ranks[p], rg.n, s.nrefs, s.nloops,
                    rg.lhs_slot.data(), rg.vals.data(),
                    [&](i64 e, int r) -> OpRead {
                      return {true, r,
                              rg.offs[static_cast<std::size_t>(
                                  e * s.nrefs + r)]};
                    });
  }
  replay_ = std::move(prog);
  return replay_.get();
}

// ---- arming / dispatch ----------------------------------------------

JitPoll JitState::poll(const prog::Clause& clause, const ClauseKernel& kern,
                       const JitConfig& cfg, JitStats& stats) {
  JitPoll r;
  bool submit_sync = false, submit_async = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!cfg.enabled || cfg.engine == nullptr) return r;
    ++seen_;
    if (status_ == Status::Idle && seen_ >= cfg.threshold) {
      if (!kern.affine()) {
        // Non-affine clauses run the per-element interpreter path; there
        // is no fused/replay loop to compile. Silent: never armed, so
        // never a fallback.
        status_ = Status::Ineligible;
      } else {
        source_ = jit_source(clause);
        status_ = Status::Pending;
        r.launched = true;
        (cfg.sync ? submit_sync : submit_async) = true;
      }
    }
  }
  if (submit_sync)
    cfg.engine->compile(shared_from_this(), cfg);
  else if (submit_async)
    cfg.engine->submit(shared_from_this(), cfg);
  {
    std::lock_guard<std::mutex> lk(m_);
    if (status_ == Status::Ready) {
      if (!harvested_) {
        harvested_ = true;
        r.swapped = true;
        r.cached = from_cache_;
        if (from_cache_)
          ++stats.cache_hits;
        else
          ++stats.builds;
        stats.compile_ms += compile_ms_;
      }
      ++stats.hits;
      r.fns = &fns_;
    } else if (status_ == Status::Failed) {
      ++stats.fallbacks;
    }
  }
  return r;
}

bool JitState::armed() const {
  std::lock_guard<std::mutex> lk(m_);
  return status_ == Status::Pending || status_ == Status::Ready ||
         status_ == Status::Failed;
}

// ---- the compile service --------------------------------------------

std::string jit_system_compiler() { return support::system_c_compiler(); }

bool jit_toolchain_available() {
  return support::c_toolchain_available();
}

JitEngine::~JitEngine() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool JitEngine::available() { return toolchain_.available(); }

std::string JitEngine::cache_dir(const JitConfig& cfg) {
  return toolchain_.cache_dir(cfg.cache_dir);
}

void JitEngine::submit(std::shared_ptr<JitState> s, const JitConfig& cfg) {
  std::lock_guard<std::mutex> lk(m_);
  if (stop_) return;
  if (!worker_running_) {
    worker_running_ = true;
    worker_ = std::thread([this] { worker_loop(); });
  }
  queue_.emplace_back(std::move(s), cfg);
  cv_.notify_all();
}

void JitEngine::worker_loop() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    auto job = std::move(queue_.front());
    queue_.erase(queue_.begin());
    busy_ = true;
    lk.unlock();
    compile(job.first, job.second);
    lk.lock();
    busy_ = false;
    cv_.notify_all();
  }
}

void JitEngine::drain() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] { return queue_.empty() && !busy_; });
}

void JitEngine::test_set_compiler(const std::string& path) {
  toolchain_.test_set_compiler(path);
}

void JitEngine::test_corrupt_source(bool on) {
  toolchain_.test_corrupt_source(on);
}

void JitEngine::test_fail_dlopen(bool on) {
  toolchain_.test_fail_dlopen(on);
}

void JitEngine::compile(const std::shared_ptr<JitState>& s,
                        const JitConfig& cfg) {
  std::string src;
  {
    std::lock_guard<std::mutex> lk(s->m_);
    src = s->source_;
  }
  auto fail = [&] {
    std::lock_guard<std::mutex> lk(s->m_);
    s->status_ = JitState::Status::Failed;
  };
  NativeModule mod = toolchain_.load(src, cfg.cache_dir);
  if (!mod.ok) return fail();
  JitFns fns;
  fns.fused = reinterpret_cast<JitFusedFn>(
      toolchain_.symbol(mod, "vcal_jit_fused"));
  fns.replay = reinterpret_cast<JitReplayFn>(
      toolchain_.symbol(mod, "vcal_jit_replay"));
  if (!fns.fused || !fns.replay) return fail();
  std::lock_guard<std::mutex> lk(s->m_);
  s->fns_ = fns;
  s->from_cache_ = mod.from_cache;
  s->compile_ms_ = mod.compile_ms;
  s->status_ = JitState::Status::Ready;
}

}  // namespace vcal::spmd
