# Empty dependencies file for fn_test.
# This may be replaced when dependencies are built.
