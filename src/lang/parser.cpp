#include "lang/parser.hpp"

#include "lang/lexer.hpp"
#include "support/error.hpp"

namespace vcal::lang {

namespace {

AExprPtr make_expr(AExpr e) { return std::make_shared<AExpr>(std::move(e)); }

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  AProgram program() {
    AProgram p;
    // Declarations come first; statements follow.
    for (;;) {
      if (at(Tok::KwProcessors)) {
        advance();
        Token n = expect(Tok::Int, "processor count");
        p.procs = n.int_value;
        if (p.procs < 1) err("processor count must be >= 1", n);
        expect(Tok::Semicolon, "';' after processors");
      } else if (at(Tok::KwArray)) {
        p.arrays.push_back(array_decl());
      } else if (at(Tok::KwView)) {
        p.views.push_back(view_decl());
      } else if (at(Tok::KwDistribute)) {
        p.distributes.push_back(distribute_decl());
      } else {
        break;
      }
    }
    while (!at(Tok::End)) p.stmts.push_back(statement());
    return p;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok t) const { return cur().kind == t; }
  Token advance() { return toks_[pos_++]; }

  [[noreturn]] void err(const std::string& msg, const Token& t) const {
    throw ParseError(msg + " (found " + to_string(t.kind) + ")", t.line,
                     t.col);
  }

  Token expect(Tok t, const std::string& what) {
    if (!at(t)) err("expected " + what, cur());
    return advance();
  }

  AArrayDecl array_decl() {
    Token kw = expect(Tok::KwArray, "'array'");
    AArrayDecl d;
    d.line = kw.line;
    d.col = kw.col;
    d.name = expect(Tok::Ident, "array name").text;
    expect(Tok::LBracket, "'[' after array name");
    for (;;) {
      AExprPtr lo = expr();
      expect(Tok::Colon, "':' in array bounds");
      AExprPtr hi = expr();
      d.bounds.emplace_back(std::move(lo), std::move(hi));
      if (at(Tok::Comma)) {
        advance();
        continue;
      }
      break;
    }
    expect(Tok::RBracket, "']' closing array bounds");
    expect(Tok::Semicolon, "';' after array declaration");
    return d;
  }

  AViewDecl view_decl() {
    Token kw = expect(Tok::KwView, "'view'");
    AViewDecl v;
    v.line = kw.line;
    v.col = kw.col;
    v.name = expect(Tok::Ident, "view name").text;
    expect(Tok::LBracket, "'[' after view name");
    v.lo = expr();
    expect(Tok::Colon, "':' in view bounds");
    v.hi = expr();
    expect(Tok::RBracket, "']' closing view bounds");
    expect(Tok::Eq, "'=' in view declaration");
    v.base = expect(Tok::Ident, "base array of the view").text;
    expect(Tok::LBracket, "'[' after the view's base array");
    v.subs.push_back(expr());
    while (at(Tok::Comma)) {
      advance();
      v.subs.push_back(expr());
    }
    expect(Tok::RBracket, "']' closing the view map");
    expect(Tok::Semicolon, "';' after view declaration");
    return v;
  }

  ADistDim dist_dim() {
    ADistDim d;
    if (at(Tok::KwBlock)) {
      advance();
      d.kind = ADistDim::Kind::Block;
    } else if (at(Tok::KwScatter)) {
      advance();
      d.kind = ADistDim::Kind::Scatter;
    } else if (at(Tok::KwBlockScatter)) {
      advance();
      expect(Tok::LParen, "'(' after blockscatter");
      Token b = expect(Tok::Int, "block size");
      if (b.int_value < 1) err("block size must be >= 1", b);
      d.kind = ADistDim::Kind::BlockScatter;
      d.block = b.int_value;
      expect(Tok::RParen, "')' closing blockscatter");
    } else if (at(Tok::Star)) {
      advance();
      d.kind = ADistDim::Kind::Star;
    } else {
      err("expected a distribution (block, scatter, blockscatter(b), *)",
          cur());
    }
    return d;
  }

  ADistSpec dist_spec() {
    ADistSpec spec;
    if (at(Tok::KwReplicated)) {
      advance();
      spec.replicated = true;
      return spec;
    }
    if (at(Tok::LParen)) {
      advance();
      spec.dims.push_back(dist_dim());
      while (at(Tok::Comma)) {
        advance();
        spec.dims.push_back(dist_dim());
      }
      expect(Tok::RParen, "')' closing distribution list");
    } else {
      spec.dims.push_back(dist_dim());
    }
    if (at(Tok::KwOverlap)) {
      advance();
      expect(Tok::LParen, "'(' after overlap");
      Token h = expect(Tok::Int, "halo width");
      if (h.int_value < 0) err("halo width must be >= 0", h);
      spec.overlap = h.int_value;
      expect(Tok::RParen, "')' closing overlap");
    }
    return spec;
  }

  ADistribute distribute_decl() {
    Token kw = expect(Tok::KwDistribute, "'distribute'");
    ADistribute d;
    d.line = kw.line;
    d.col = kw.col;
    d.name = expect(Tok::Ident, "array name after distribute").text;
    d.spec = dist_spec();
    expect(Tok::Semicolon, "';' after distribute");
    return d;
  }

  AStmt statement() {
    if (at(Tok::KwForall) || at(Tok::KwFor)) return loop();
    if (at(Tok::KwRedistribute)) {
      Token kw = advance();
      ARedistribute r;
      r.line = kw.line;
      r.col = kw.col;
      r.name = expect(Tok::Ident, "array name after redistribute").text;
      r.spec = dist_spec();
      expect(Tok::Semicolon, "';' after redistribute");
      return r;
    }
    if (at(Tok::Ident)) return assignment();
    err("expected a statement", cur());
  }

  ALoop loop() {
    Token kw = advance();  // forall / for
    ALoop l;
    l.line = kw.line;
    l.col = kw.col;
    l.parallel = (kw.kind == Tok::KwForall);
    for (;;) {
      AIter it;
      Token v = expect(Tok::Ident, "loop variable");
      it.var = v.text;
      it.line = v.line;
      it.col = v.col;
      expect(Tok::KwIn, "'in' after loop variable");
      it.lo = expr();
      expect(Tok::Colon, "':' in loop range");
      it.hi = expr();
      l.iters.push_back(std::move(it));
      if (at(Tok::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (at(Tok::Bar)) {
      advance();
      l.guard = condition();
    }
    expect(Tok::KwDo, "'do' opening the loop body");
    while (!at(Tok::KwOd)) l.body.push_back(assignment());
    expect(Tok::KwOd, "'od' closing the loop body");
    if (l.body.empty()) err("loop body is empty", cur());
    return l;
  }

  AAssign assignment() {
    Token name = expect(Tok::Ident, "array name");
    AAssign a;
    a.array = name.text;
    a.line = name.line;
    a.col = name.col;
    expect(Tok::LBracket, "'[' after array name");
    a.subs.push_back(expr());
    while (at(Tok::Comma)) {
      advance();
      a.subs.push_back(expr());
    }
    expect(Tok::RBracket, "']' closing subscripts");
    expect(Tok::Assign, "':='");
    a.value = expr();
    expect(Tok::Semicolon, "';' after assignment");
    return a;
  }

  ACond condition() {
    ACond c;
    c.lhs = expr();
    switch (cur().kind) {
      case Tok::Lt:
        c.cmp = prog::Guard::Cmp::LT;
        break;
      case Tok::Le:
        c.cmp = prog::Guard::Cmp::LE;
        break;
      case Tok::Gt:
        c.cmp = prog::Guard::Cmp::GT;
        break;
      case Tok::Ge:
        c.cmp = prog::Guard::Cmp::GE;
        break;
      case Tok::Eq:
        c.cmp = prog::Guard::Cmp::EQ;
        break;
      case Tok::Ne:
        c.cmp = prog::Guard::Cmp::NE;
        break;
      default:
        err("expected a comparison operator in the guard", cur());
    }
    advance();
    c.rhs = expr();
    return c;
  }

  AExprPtr expr() {
    AExprPtr e = term();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      Token op = advance();
      AExpr n;
      n.kind = op.kind == Tok::Plus ? AExpr::Kind::Add : AExpr::Kind::Sub;
      n.line = op.line;
      n.col = op.col;
      n.lhs = e;
      n.rhs = term();
      e = make_expr(std::move(n));
    }
    return e;
  }

  AExprPtr term() {
    AExprPtr e = factor();
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::KwDiv) ||
           at(Tok::KwMod)) {
      Token op = advance();
      AExpr n;
      switch (op.kind) {
        case Tok::Star:
          n.kind = AExpr::Kind::Mul;
          break;
        case Tok::Slash:
          n.kind = AExpr::Kind::RealDiv;
          break;
        case Tok::KwDiv:
          n.kind = AExpr::Kind::IntDiv;
          break;
        default:
          n.kind = AExpr::Kind::Mod;
          break;
      }
      n.line = op.line;
      n.col = op.col;
      n.lhs = e;
      n.rhs = factor();
      e = make_expr(std::move(n));
    }
    return e;
  }

  AExprPtr factor() {
    Token t = cur();
    if (at(Tok::Minus)) {
      advance();
      AExpr n;
      n.kind = AExpr::Kind::Neg;
      n.line = t.line;
      n.col = t.col;
      n.lhs = factor();
      return make_expr(std::move(n));
    }
    if (at(Tok::Int)) {
      advance();
      AExpr n;
      n.kind = AExpr::Kind::Int;
      n.int_value = t.int_value;
      n.line = t.line;
      n.col = t.col;
      return make_expr(std::move(n));
    }
    if (at(Tok::Real)) {
      advance();
      AExpr n;
      n.kind = AExpr::Kind::Real;
      n.real_value = t.real_value;
      n.line = t.line;
      n.col = t.col;
      return make_expr(std::move(n));
    }
    if (at(Tok::LParen)) {
      advance();
      AExprPtr e = expr();
      expect(Tok::RParen, "')'");
      return e;
    }
    if (at(Tok::Ident)) {
      advance();
      AExpr n;
      n.line = t.line;
      n.col = t.col;
      n.name = t.text;
      if (at(Tok::LBracket)) {
        advance();
        n.kind = AExpr::Kind::Ref;
        n.subs.push_back(expr());
        while (at(Tok::Comma)) {
          advance();
          n.subs.push_back(expr());
        }
        expect(Tok::RBracket, "']' closing subscripts");
      } else {
        n.kind = AExpr::Kind::Var;
      }
      return make_expr(std::move(n));
    }
    err("expected an expression", t);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

AProgram parse(const std::string& source) {
  return Parser(lex(source)).program();
}

}  // namespace vcal::lang
