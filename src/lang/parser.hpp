// Recursive-descent parser for vexl.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace vcal::lang {

/// Parses a complete vexl program. Throws ParseError with line/column on
/// syntax errors.
AProgram parse(const std::string& source);

}  // namespace vcal::lang
