# Empty compiler generated dependencies file for vcal.
# This may be replaced when dependencies are built.
