# Empty dependencies file for gcd_convergence.
# This may be replaced when dependencies are built.
