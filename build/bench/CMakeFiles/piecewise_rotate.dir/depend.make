# Empty dependencies file for piecewise_rotate.
# This may be replaced when dependencies are built.
