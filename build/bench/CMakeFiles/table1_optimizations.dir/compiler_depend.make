# Empty compiler generated dependencies file for table1_optimizations.
# This may be replaced when dependencies are built.
