# Empty compiler generated dependencies file for rotate_shuffle.
# This may be replaced when dependencies are built.
