// One-dimensional data decompositions (Figure 2 of the paper).
//
// All three paper decompositions are instances of block-scatter BS(b)
// ((i div b) mod pmax owns element i):
//
//   block        BS(ceil(n / P))   one contiguous block per processor
//   scatter      BS(1)             cyclic / round-robin
//   blockscatter BS(b)             blocks of b dealt cyclically
//
// plus `replicated` (every processor holds the whole array). The Kind tag
// is kept because the optimizer has cheaper closed forms for the special
// cases (Table I columns).
#pragma once

#include <string>
#include <vector>

#include "support/math.hpp"

namespace vcal::decomp {

class Decomp1D {
 public:
  enum class Kind { Block, Scatter, BlockScatter, Replicated };

  /// Block decomposition of n elements over P processors, b = ceil(n/P).
  static Decomp1D block(i64 n, i64 procs);
  /// Scatter (cyclic) decomposition.
  static Decomp1D scatter(i64 n, i64 procs);
  /// Block-scatter BS(b): blocks of size b dealt round-robin.
  static Decomp1D block_scatter(i64 n, i64 procs, i64 b);
  /// Every processor stores all n elements (local == global).
  static Decomp1D replicated(i64 n, i64 procs);

  Kind kind() const noexcept { return kind_; }
  i64 n() const noexcept { return n_; }
  i64 procs() const noexcept { return procs_; }
  i64 block_size() const noexcept { return b_; }

  /// Owner of global element i (0 <= i < n). For Replicated, returns 0 by
  /// convention (every processor also holds a copy; see is_replicated()).
  i64 proc(i64 i) const;

  /// Local address of global element i on its owner (or on any processor
  /// for Replicated).
  i64 local(i64 i) const;

  /// Inverse map: global index of local element l on processor p.
  i64 global(i64 p, i64 l) const;

  /// Number of local slots processor p needs (max local(i) + 1 over the
  /// elements p owns; closed form, no scanning).
  i64 local_capacity(i64 p) const;

  /// True when every processor holds every element.
  bool is_replicated() const noexcept {
    return kind_ == Kind::Replicated;
  }

  /// All global indices owned by p, ascending (reference/test helper).
  std::vector<i64> owned_indices(i64 p) const;

  /// E.g. "block(b=4)", "scatter", "blockscatter(b=2)", "replicated".
  std::string str() const;

  bool operator==(const Decomp1D& o) const noexcept {
    return kind_ == o.kind_ && n_ == o.n_ && procs_ == o.procs_ &&
           b_ == o.b_;
  }

 private:
  Decomp1D(Kind kind, i64 n, i64 procs, i64 b);
  Kind kind_;
  i64 n_;
  i64 procs_;
  i64 b_;
};

}  // namespace vcal::decomp
