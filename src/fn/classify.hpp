// Classification of symbolic subscript expressions into IndexFn shapes.
//
// This is the compile-time analysis the paper relies on when it says an
// index propagation function "has the form f(i) = a.i + c" etc.: given the
// Sym tree of a subscript, recognize the strongest class Table I can
// optimize. Structural rules (conservative, never wrong):
//
//   constants/variable .......... exact linear form a*i + c
//   +, -, * by constants ........ stay linear
//   linear mod constant (+ c) ... (a*i + c) mod z + d      (Section 3.3)
//   linear div constant ......... weakly monotone
//   sums/products of compatible
//   monotone terms .............. monotone (possibly only for i >= 0)
//   anything else ............... opaque (run-time resolution)
#pragma once

#include "fn/index_fn.hpp"
#include "fn/sym.hpp"

namespace vcal::fn {

/// Returns the strongest IndexFn classification for `s`. The returned
/// function evaluates identically to eval(s, i) for all i (monotone and
/// opaque results keep a reference to the tree).
IndexFn classify(const SymPtr& s);

}  // namespace vcal::fn
