// Linear cost model for the simulated machines.
//
// The paper reports no absolute timings (its machines are 1991 hardware);
// what transfers is the *count structure*: membership tests, loop
// iterations, and messages. The simulator charges each a configurable
// price and reports the SPMD makespan (the slowest processor per step,
// summed over steps), so benchmark shapes — who wins, where crossovers
// fall — are reproducible deterministically on any host.
//
// Communication is charged with an aggregated latency/bandwidth model:
// the engine packs all elements flowing between one (src, dst) rank pair
// in one clause step into a single bulk message, so latency
// (per_bulk_message) is paid once per rank pair while elements ride at
// per_value bandwidth cost. message_cost() prices the same traffic under
// the historical one-message-per-element model; benchmarks print both to
// show the aggregation win.
#pragma once

#include <string>

#include "support/math.hpp"

namespace vcal::rt {

struct CostModel {
  double per_message = 50.0;  // latency of one unaggregated message
  double per_value = 1.0;     // marginal transfer cost per element
  double per_iteration = 1.0; // loop-body execution
  double per_test = 0.5;      // run-time membership test / probe
  double per_barrier = 200.0; // global barrier synchronization (shared)
  double per_bulk_message = 50.0;  // latency of one aggregated message

  /// Price of `messages` element transfers if each were its own message
  /// (the pre-aggregation model; kept for baseline comparisons).
  double message_cost(i64 messages) const {
    return static_cast<double>(messages) * (per_message + per_value);
  }
  /// Price of `values` element transfers packed into `bulk` messages.
  double bulk_cost(i64 bulk, i64 values) const {
    return static_cast<double>(bulk) * per_bulk_message +
           static_cast<double>(values) * per_value;
  }
  double compute_cost(i64 iterations, i64 tests) const {
    return static_cast<double>(iterations) * per_iteration +
           static_cast<double>(tests) * per_test;
  }
};

/// Per-rank accounting for one step; the step's makespan is the maximum
/// rank_time over ranks.
struct RankCounters {
  i64 sends = 0;
  i64 receives = 0;
  i64 iterations = 0;  // loop-body entries (including overhead iterations)
  i64 tests = 0;       // membership tests / probes
  i64 local_reads = 0;
  i64 remote_reads = 0;
  // Aggregated element traffic: sends/receives elements ride in
  // bulk_sends/bulk_receives per-(src,dst) messages.
  i64 bulk_sends = 0;     // outgoing bulk messages (distinct dst ranks)
  i64 bulk_receives = 0;  // incoming bulk messages (distinct src ranks)
  // Halo exchange (overlapped decompositions): bulk transfers combine a
  // whole boundary region into one message; elements ride at per-value
  // cost.
  i64 halo_bulk = 0;    // bulk halo messages sent or received
  i64 halo_values = 0;  // elements carried by those messages
  i64 halo_reads = 0;   // remote reads satisfied from the local halo

  double time(const CostModel& cm) const {
    return cm.bulk_cost(bulk_sends + bulk_receives, sends + receives) +
           cm.compute_cost(iterations, tests) +
           static_cast<double>(halo_bulk) * cm.per_message +
           static_cast<double>(halo_values) * cm.per_value;
  }
};

}  // namespace vcal::rt
