# Empty compiler generated dependencies file for barrier_elision.
# This may be replaced when dependencies are built.
