#include "spmd/native_toolchain.hpp"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/toolchain.hpp"

namespace vcal::spmd {

bool NativeToolchain::available() { return !compiler().empty(); }

std::string NativeToolchain::compiler() {
  std::lock_guard<std::mutex> lk(detect_m_);
  if (compiler_override_.empty()) return support::system_c_compiler();
  if (detected_ >= 0) return compiler_path_;
  // Probe the per-instance override separately from the process-wide
  // detection so one engine's injected broken compiler cannot poison
  // another session's toolchain.
  if (support::probe_tool(compiler_override_)) {
    detected_ = 1;
    compiler_path_ = compiler_override_;
  } else {
    detected_ = 0;
    compiler_path_.clear();
  }
  return compiler_path_;
}

std::string NativeToolchain::fingerprint(
    const std::string& source, const std::vector<std::string>& flags) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  auto mix = [&](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xFF;  // field separator: {"a","b"} != {"ab"}
    h *= 1099511628211ull;
  };
  mix(source);
  for (const std::string& f : flags) mix(f);
  char buf[32];
  std::snprintf(buf, sizeof buf, "vcal%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string NativeToolchain::cache_dir(const std::string& requested) {
  std::string dir = requested;
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = (tmp && *tmp) ? tmp : "/tmp";
    dir += "/vcal-jit-cache-" +
           std::to_string(static_cast<long>(::getuid()));
  }
  ::mkdir(dir.c_str(), 0700);  // one level; racing creators both succeed
  // Everything in this directory feeds dlopen, and the default path is
  // predictable: refuse symlinks and any directory we do not own or
  // that another user could write, falling back to bytecode instead of
  // loading what an attacker may have planted there.
  struct ::stat st;
  if (::lstat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return {};
  if (st.st_uid != ::getuid()) return {};
  if ((st.st_mode & (S_IWGRP | S_IWOTH)) != 0) return {};
  return dir;
}

NativeModule NativeToolchain::load(const std::string& source,
                                   const std::string& requested_dir,
                                   const std::vector<std::string>& flags) {
  std::string src = source;
  bool fail_dl = false;
  {
    std::lock_guard<std::mutex> lk(detect_m_);
    // The corrupted unit hashes differently, so an injected failure can
    // never poison the content-addressed cache.
    if (corrupt_source_)
      src += "\n#error vcal native injected compile failure\n";
    fail_dl = fail_dlopen_;
  }
  NativeModule m;
  m.fingerprint = fingerprint(src, flags);

  const auto t0 = std::chrono::steady_clock::now();
  auto done = [&](NativeModule&& out) {
    out.compile_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return std::move(out);
  };

  // The registry lock covers the whole load: two threads of one
  // session asking for the same unit compile it once, and a compile is
  // rare enough that serializing distinct units behind it is cheaper
  // than a per-fingerprint singleflight.
  std::lock_guard<std::mutex> lk(modules_m_);
  auto it = modules_.find(m.fingerprint);
  if (it != modules_.end()) {
    NativeModule hit = it->second;
    hit.from_cache = true;
    return done(std::move(hit));
  }

  const std::string cc = compiler();
  if (cc.empty()) {
    m.error = "no C compiler detected";
    return done(std::move(m));
  }
  const std::string dir = cache_dir(requested_dir);
  if (dir.empty()) {
    m.error = "cache directory refused (symlink, foreign owner, or "
              "group/other-writable)";
    return done(std::move(m));
  }
  const std::string stem = dir + "/" + m.fingerprint;
  const std::string so = stem + ".so";
  const std::string tag = "." + std::to_string(::getpid());
  m.source_path = stem + ".c";
  m.log_path = stem + ".log";

  auto build = [&]() -> bool {
    // tmp + rename: concurrent processes compiling the same unit
    // never observe partial files, and the last rename wins.
    const std::string ctmp = m.source_path + tag;
    {
      std::ofstream out(ctmp);
      out << src;
      if (!out) {
        m.error = "cannot write " + ctmp;
        return false;
      }
    }
    ::rename(ctmp.c_str(), m.source_path.c_str());
    const std::string sotmp = so + tag;
    std::vector<std::string> argv = {cc,
                                     "-O2",
                                     "-fPIC",
                                     "-shared",
                                     "-ffp-contract=off",
                                     "-fno-fast-math"};
    for (const std::string& f : flags) argv.push_back(f);
    argv.push_back("-o");
    argv.push_back(sotmp);
    argv.push_back(m.source_path);
    if (!support::run_command(argv, m.log_path)) {
      std::remove(sotmp.c_str());
      m.error = "compile failed (see " + m.log_path + ")";
      return false;
    }
    ::rename(sotmp.c_str(), so.c_str());
    return true;
  };
  auto open_module = [&]() -> bool {
    void* h =
        fail_dl ? nullptr : ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!h) {
      const char* why = fail_dl ? "injected dlopen failure" : ::dlerror();
      m.error = std::string("dlopen failed: ") + (why ? why : "unknown");
      return false;
    }
    // Handles are immortal: generated functions may still be
    // referenced by machines at process exit, so never dlclosed.
    m.handle = h;
    return true;
  };

  bool have_so = ::access(so.c_str(), R_OK) == 0;
  if (fail_dl) have_so = false;  // force a fresh (failing) open below
  if (!have_so && !build()) return done(std::move(m));
  if (!open_module()) {
    if (!have_so) return done(std::move(m));
    // A pre-existing .so that refuses to load (truncated, wrong arch
    // on a shared cache dir) would otherwise lock this unit out of
    // native execution in every future process: drop it and rebuild
    // once.
    ::unlink(so.c_str());
    have_so = false;
    m.error.clear();
    if (!build() || !open_module()) return done(std::move(m));
  }
  m.ok = true;
  m.from_cache = have_so;  // .so reused from a previous run
  modules_.emplace(m.fingerprint, m);
  return done(std::move(m));
}

void* NativeToolchain::symbol(const NativeModule& m, const char* name) {
  if (!m.ok || m.handle == nullptr) return nullptr;
  return ::dlsym(m.handle, name);
}

void NativeToolchain::test_set_compiler(const std::string& path) {
  std::lock_guard<std::mutex> lk(detect_m_);
  compiler_override_ = path;
  detected_ = -1;
  compiler_path_.clear();
}

void NativeToolchain::test_corrupt_source(bool on) {
  std::lock_guard<std::mutex> lk(detect_m_);
  corrupt_source_ = on;
}

void NativeToolchain::test_fail_dlopen(bool on) {
  std::lock_guard<std::mutex> lk(detect_m_);
  fail_dlopen_ = on;
}

}  // namespace vcal::spmd
