#include "rt/shared_machine.hpp"

#include <algorithm>
#include <optional>

#include "spmd/barrier.hpp"
#include "support/error.hpp"

namespace vcal::rt {

using prog::Clause;
using spmd::ClausePlan;

SharedMachine::SharedMachine(spmd::Program program, gen::BuildOptions opts,
                             CostModel cost, bool elide_barriers,
                             EngineOptions engine)
    : program_(std::move(program)),
      opts_(opts),
      cost_(cost),
      elide_barriers_(elide_barriers),
      engine_(engine) {
  program_.validate();
  if (engine_.threads > 1)
    pool_ = std::make_unique<support::ThreadPool>(engine_.threads);
  for (const auto& [name, desc] : program_.arrays) store_.declare(desc);
}

void SharedMachine::load(const std::string& name,
                         const std::vector<double>& dense) {
  auto it = program_.arrays.find(name);
  require(it != program_.arrays.end(),
          "SharedMachine::load unknown " + name);
  store_.load(it->second, dense);
}

void SharedMachine::for_ranks(i64 n,
                              const std::function<void(i64)>& body) {
  if (engine_.threads == 1) {
    for (i64 r = 0; r < n; ++r) body(r);
    return;
  }
  support::ThreadPool& pool =
      pool_ ? *pool_ : support::ThreadPool::shared();
  pool.parallel_for_ranks(n, body);
}

void SharedMachine::run() {
  // Each clause ends with a barrier; the footnote-1 analysis may prove
  // the barrier between two consecutive parallel clauses unnecessary.
  // `pending` holds the plan of the last clause whose trailing barrier
  // has not been accounted yet (nullopt plan = not analyzable: keep).
  std::optional<ClausePlan> pending;
  bool pending_exists = false;

  auto resolve_pending = [&](const ClausePlan* next) {
    if (!pending_exists) return;
    bool keep = true;
    if (elide_barriers_ && pending && next)
      keep = spmd::barrier_needed(*pending, *next);
    if (keep) {
      ++stats_.barriers;
      stats_.sim_time += cost_.per_barrier;
    } else {
      ++stats_.barriers_elided;
    }
    pending.reset();
    pending_exists = false;
  };

  auto plan_for = [&](const Clause& clause) -> ClausePlan {
    if (engine_.cache_plans)
      return plan_cache_.get(clause, program_.arrays, opts_);
    return ClausePlan::build(clause, program_.arrays, opts_);
  };

  for (const spmd::Step& step : program_.steps) {
    if (const auto* clause = std::get_if<Clause>(&step)) {
      if (clause->ord == prog::Ordering::Seq) {
        resolve_pending(nullptr);
        run_clause_sequential(*clause);
        pending.reset();
        pending_exists = true;  // unanalyzable: barrier stays
      } else {
        ClausePlan plan = plan_for(*clause);
        resolve_pending(&plan);
        run_clause(*clause, plan);
        pending = std::move(plan);
        pending_exists = true;
      }
    } else {
      // Shared memory: redistribution only changes future ownership, but
      // it is a synchronization point for the analysis, and cached plans
      // baked the old layout into their owner arithmetic.
      resolve_pending(nullptr);
      const auto& redist = std::get<spmd::RedistStep>(step);
      program_.arrays.insert_or_assign(redist.array, redist.new_desc);
      plan_cache_.bump_epoch();
      ++stats_.barriers;
      stats_.sim_time += cost_.per_barrier;
    }
  }
  resolve_pending(nullptr);  // the final barrier is always performed
}

void SharedMachine::run_clause(const Clause& clause,
                               const ClausePlan& plan) {
  const decomp::ArrayDesc& lhs = plan.lhs_desc();
  const i64 procs = plan.procs();

  bool lhs_read = false;
  for (const prog::ArrayRef& r : clause.refs)
    if (r.array == clause.lhs_array) lhs_read = true;
  std::optional<std::vector<double>> snap;
  if (lhs_read) snap = store_.snapshot(clause.lhs_array);

  std::vector<gen::EnumStats> rank_stats(static_cast<std::size_t>(procs));

  // Ownership partitioning makes writes disjoint; the pool's join is the
  // template's barrier (whether the generated program would need it is
  // accounted in run()).
  for_ranks(procs, [&](i64 p) {
    std::vector<double> ref_values(clause.refs.size());
    std::vector<i64> out_idx, idx;  // per-rank scratch
    // Hoist the string-keyed buffer lookups out of the element loop:
    // reads come from the copy-in snapshot (self-reads) or the shared
    // dense buffer; writes go to the (disjointly partitioned) LHS buffer.
    std::vector<const std::vector<double>*> rows(clause.refs.size());
    for (std::size_t r = 0; r < clause.refs.size(); ++r)
      rows[r] = snap && clause.refs[r].array == clause.lhs_array
                    ? &*snap
                    : &store_.dense(clause.refs[r].array);
    std::vector<double>& out_buf = store_.buffer(clause.lhs_array);
    spmd::IterationSpace space = plan.modify_space(p);
    space.for_each(
        [&](const std::vector<i64>& vals) {
          plan.lhs_index_into(vals, out_idx);
          if (!lhs.in_bounds(out_idx))
            throw RuntimeFault("write out of bounds on " +
                               clause.lhs_array);
          for (std::size_t r = 0; r < clause.refs.size(); ++r) {
            const decomp::ArrayDesc& rd =
                plan.ref_desc(static_cast<int>(r));
            plan.ref_index_into(static_cast<int>(r), vals, idx);
            if (!rd.in_bounds(idx))
              throw RuntimeFault("read out of bounds on " +
                                 clause.refs[r].array);
            ref_values[r] =
                (*rows[r])[static_cast<std::size_t>(rd.dense_linear(idx))];
          }
          if (clause.guard && !clause.guard->holds(ref_values, vals)) return;
          out_buf[static_cast<std::size_t>(lhs.dense_linear(out_idx))] =
              prog::eval(clause.rhs, ref_values, vals);
        },
        &rank_stats[static_cast<std::size_t>(p)]);
  });

  double slowest = 0.0;
  for (const auto& s : rank_stats) {
    stats_.iterations += s.loop_iters;
    stats_.tests += s.tests;
    slowest = std::max(slowest, cost_.compute_cost(s.loop_iters, s.tests));
  }
  stats_.sim_time += slowest;
}

void SharedMachine::run_clause_sequential(const Clause& clause) {
  // '•' ordering: one processor walks the whole nest in lexicographic
  // order with immediate visibility, then everyone synchronizes.
  std::optional<ClausePlan> uncached;
  if (!engine_.cache_plans)
    uncached.emplace(ClausePlan::build(clause, program_.arrays, opts_));
  const ClausePlan& plan =
      uncached ? *uncached : plan_cache_.get(clause, program_.arrays, opts_);
  const decomp::ArrayDesc& lhs = plan.lhs_desc();

  std::vector<double> ref_values(clause.refs.size());
  std::vector<i64> out_idx, idx;  // scratch
  gen::EnumStats s;
  // A full-range space: rank ownership is ignored under '•'.
  std::vector<gen::Schedule> dims;
  for (const prog::LoopDim& l : clause.loops) {
    if (l.lo > l.hi) return;
    dims.push_back(gen::Schedule::closed_form(
        gen::Method::Replicated, {{l.lo, l.hi - l.lo + 1, 1}}));
  }
  spmd::IterationSpace space{std::move(dims)};
  space.for_each(
      [&](const std::vector<i64>& vals) {
        plan.lhs_index_into(vals, out_idx);
        if (!lhs.in_bounds(out_idx)) return;
        for (std::size_t r = 0; r < clause.refs.size(); ++r) {
          plan.ref_index_into(static_cast<int>(r), vals, idx);
          ref_values[r] = store_.read(plan.ref_desc(static_cast<int>(r)),
                                      idx);
        }
        if (clause.guard && !clause.guard->holds(ref_values, vals)) return;
        store_.write(lhs, out_idx, prog::eval(clause.rhs, ref_values, vals));
      },
      &s);
  stats_.iterations += s.loop_iters;
  stats_.tests += s.tests;
  stats_.sim_time += cost_.compute_cost(s.loop_iters, s.tests);
}

const std::vector<double>& SharedMachine::result(
    const std::string& name) const {
  return store_.dense(name);
}

}  // namespace vcal::rt
