// Table I reproduction: closed-form generator functions for every class
// of index function × decomposition the paper optimizes.
//
// For each cell the harness reports, per processor count P:
//   - the method the optimizer chose (the Table I entry),
//   - membership tests and worst-processor loop iterations for run-time
//     resolution (the unoptimized Section 2.6 template) vs the closed
//     form,
//   - the resulting speedup on the hot path (the paper's complexity
//     argument: a full scan of imax-imin+1 tests per processor collapses
//     to ~(imax-imin)/P closed-form iterations),
// and verifies on a smaller instance that both enumerations produce the
// identical index sets. Wall-clock timings for representative cells run
// under google-benchmark at the end.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fn/classify.hpp"
#include "gen/cost.hpp"
#include "gen/optimizer.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;
using decomp::Decomp1D;
using fn::IndexFn;
using gen::BuildOptions;
using gen::OwnerComputePlan;
using gen::PlanCost;

struct Row {
  std::string label;
  IndexFn f;
};

std::vector<Row> rows_for(i64 procs) {
  using namespace fn;
  std::vector<Row> rows;
  rows.push_back({"c (Theorem 1)", IndexFn::constant(1234)});
  rows.push_back({"i+c", IndexFn::affine(1, 5)});
  rows.push_back({"a*i+c, pmax mod a=0", IndexFn::affine(2, 1)});
  rows.push_back({"a*i+c, a mod pmax=0", IndexFn::affine(procs, 3)});
  rows.push_back({"a*i+c general", IndexFn::affine(3, 1)});
  rows.push_back(
      {"monotone i+(i div 4)",
       classify(add(var(), intdiv(var(), cnst(4))))});
  return rows;
}

struct Cell {
  std::string decomp;
  std::string method;
  i64 naive_worst;
  i64 opt_worst;
  double speedup;
  bool verified;
};

Cell measure_cell(const IndexFn& f, const Decomp1D& d, i64 imin, i64 imax) {
  OwnerComputePlan opt = OwnerComputePlan::build(f, d, imin, imax);
  BuildOptions forced;
  forced.force_runtime_resolution = true;
  OwnerComputePlan naive =
      OwnerComputePlan::build(f, d, imin, imax, forced);

  PlanCost copt = gen::measure_plan(opt);
  PlanCost cnaive = gen::measure_plan(naive);

  // Verification on a smaller instance (same parameters, n/16 range).
  bool verified = true;
  {
    i64 vmax = imin + (imax - imin) / 16;
    OwnerComputePlan vo = OwnerComputePlan::build(f, d, imin, vmax);
    OwnerComputePlan vn = OwnerComputePlan::build(f, d, imin, vmax, forced);
    for (i64 p = 0; p < d.procs(); ++p) {
      if (vo.for_proc(p).materialize_sorted() !=
          vn.for_proc(p).materialize_sorted()) {
        verified = false;
        break;
      }
    }
  }
  return {d.str(), to_string(opt.method()),
          cnaive.worst_proc.loop_iters + cnaive.worst_proc.tests,
          copt.worst_proc.loop_iters + copt.worst_proc.tests,
          copt.speedup_vs(cnaive), verified};
}

void print_table(i64 n, i64 procs) {
  std::printf("\n--- Table I cells, n = %s, pmax = %lld ---\n",
              with_commas(n).c_str(), (long long)procs);
  std::printf("%-24s %-20s %-18s %12s %12s %9s %4s\n", "f(i)",
              "decomposition", "method", "naive/proc", "opt/proc",
              "speedup", "ok");
  i64 imax = n - 1;
  for (const Row& row : rows_for(procs)) {
    std::vector<Decomp1D> ds = {
        Decomp1D::block(n, procs),
        Decomp1D::scatter(n, procs),
        Decomp1D::block_scatter(n, procs, 4),
    };
    for (const Decomp1D& d : ds) {
      Cell c = measure_cell(row.f, d, 0, imax);
      std::printf("%-24s %-20s %-18s %12s %12s %8.1fx %4s\n",
                  row.label.c_str(), c.decomp.c_str(), c.method.c_str(),
                  with_commas(c.naive_worst).c_str(),
                  with_commas(c.opt_worst).c_str(), c.speedup,
                  c.verified ? "yes" : "NO");
    }
  }
}

// ---- wall-clock cells under google-benchmark -------------------------

constexpr i64 kBenchN = 1 << 18;

void BM_ScatterAffine_Naive(benchmark::State& state) {
  BuildOptions forced;
  forced.force_runtime_resolution = true;
  OwnerComputePlan plan = OwnerComputePlan::build(
      IndexFn::affine(3, 1), Decomp1D::scatter(kBenchN * 4, state.range(0)),
      0, kBenchN - 1, forced);
  for (auto _ : state) {
    auto v = plan.for_proc(0).materialize();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ScatterAffine_Naive)->Arg(4)->Arg(16)->Arg(64);

void BM_ScatterAffine_Theorem3(benchmark::State& state) {
  OwnerComputePlan plan = OwnerComputePlan::build(
      IndexFn::affine(3, 1), Decomp1D::scatter(kBenchN * 4, state.range(0)),
      0, kBenchN - 1);
  for (auto _ : state) {
    auto v = plan.for_proc(0).materialize();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ScatterAffine_Theorem3)->Arg(4)->Arg(16)->Arg(64);

void BM_BlockAffine_Naive(benchmark::State& state) {
  BuildOptions forced;
  forced.force_runtime_resolution = true;
  OwnerComputePlan plan = OwnerComputePlan::build(
      IndexFn::affine(1, 5), Decomp1D::block(kBenchN * 2, state.range(0)),
      0, kBenchN - 1, forced);
  for (auto _ : state) {
    auto v = plan.for_proc(0).materialize();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BlockAffine_Naive)->Arg(4)->Arg(64);

void BM_BlockAffine_Bounds(benchmark::State& state) {
  OwnerComputePlan plan = OwnerComputePlan::build(
      IndexFn::affine(1, 5), Decomp1D::block(kBenchN * 2, state.range(0)),
      0, kBenchN - 1);
  for (auto _ : state) {
    auto v = plan.for_proc(0).materialize();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BlockAffine_Bounds)->Arg(4)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table I: compile-time optimizations per cell ===\n");
  for (i64 procs : {4, 16, 64}) print_table(1 << 18, procs);
  std::printf(
      "\nExpected shape: naive/proc stays ~n regardless of P; opt/proc "
      "shrinks ~n/P;\nspeedup tracks P (the paper's run-time overhead "
      "argument).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
