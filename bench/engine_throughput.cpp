// Fast-path execution engine throughput: the iterative relaxation kernel
// that motivates every optimization in this repository, run for T=200
// ping-pong sweeps at P in {4, 16, 64}.
//
//   even step:  A[i] := (B[i-1] + B[i+1]) / 2
//   odd step:   B[i] := (A[i-1] + A[i+1]) / 2
//
// Three engine configurations execute the identical program:
//
//   fast   — thread pool, per-(src,dst) bulk message aggregation,
//            clause-plan caching, scratch reuse, compiled clause kernels
//            (bytecode RHS, affine strides, fused loops); jit pinned off
//            so this row stays the pure-bytecode baseline
//   jit    — fast plus native code generation (synchronous compiles; a
//            warmup run populates the content-addressed .so cache so the
//            timed run measures steady-state dispatch, not the compiler)
//   native — the whole-program native backend (rt::NativeMachine): the
//            complete emitted OpenMP C compiled once (a warmup run
//            populates the content-addressed cache) and executed as one
//            fused binary — no interpreter anywhere in the timed run
//   interp — fast with compiled_kernels off: the kernel layer's
//            contribution in isolation (the A/B the oracle pins
//            bit-identical)
//   slow   — threads = 1, plan cache off, kernels off: every step
//            replans its clause and runs ranks serially through the
//            tree-walking interpreter.
//
// Results and all deterministic statistics must agree between the
// four; the benchmark fails loudly if they do not, or if the fast
// configuration fails to exercise the fused kernel path. Output is both
// a human table and a machine-readable JSON record (positional argument
// overrides the path, default BENCH_engine.json) so successive PRs can
// track the perf trajectory; --n=N and --steps=T shrink the problem for
// CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/native_machine.hpp"
#include "spmd/jit.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;

spmd::Program relaxation_program(i64 procs, i64 n, i64 steps) {
  std::string src =
      cat("processors ", procs, ";\n", "array A[0:", n - 1, "];\n",
          "array B[0:", n - 1, "];\n", "distribute A block;\n",
          "distribute B block;\n", "forall i in 1:", n - 2,
          " do A[i] := (B[i-1] + B[i+1])/2; od\n");
  spmd::Program p = lang::compile(src);

  // Ping-pong: repeat the compiled clause with A and B swapped on odd
  // steps so every sweep consumes the previous sweep's output.
  prog::Clause even = std::get<prog::Clause>(p.steps[0]);
  prog::Clause odd = even;
  odd.lhs_array = "B";
  for (auto& r : odd.refs) r.array = "A";
  p.steps.clear();
  for (i64 t = 0; t < steps; ++t)
    p.steps.emplace_back(t % 2 == 0 ? even : odd);
  return p;
}

std::vector<double> input(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>((i * 13) % 101);
  return v;
}

struct RunResult {
  double wall_ms = 0.0;
  rt::DistStats stats;
  rt::PathCounters paths;
  std::vector<double> a, b;
  i64 cache_hits = 0;
  i64 cache_misses = 0;
};

RunResult run_engine(const spmd::Program& p, i64 n,
                     rt::EngineOptions engine) {
  rt::DistMachine m(p, {}, {}, engine);
  m.load("B", input(n));
  auto t0 = std::chrono::steady_clock::now();
  m.run();
  auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.stats = m.stats();
  r.paths = m.path_counters();
  r.a = m.gather("A");
  r.b = m.gather("B");
  r.cache_hits = m.plan_cache().hits();
  r.cache_misses = m.plan_cache().misses();
  return r;
}

struct NativeRun {
  double wall_ms = 0.0;
  bool native = false;
  std::vector<double> a, b;
  std::string error;
};

/// One NativeMachine execution (machines are single-shot, so warmup and
/// timed runs are separate machines; `ctx` carries the module registry
/// across them, so only the first ever compiles).
NativeRun run_native(const spmd::Program& p, i64 n,
                     const std::shared_ptr<rt::EngineContext>& ctx) {
  rt::NativeMachine m(p, {}, ctx);
  m.load("B", input(n));
  auto t0 = std::chrono::steady_clock::now();
  m.run();
  auto t1 = std::chrono::steady_clock::now();
  NativeRun r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.native = m.native();
  r.a = m.result("A");
  r.b = m.result("B");
  r.error = m.error();
  return r;
}

bool stats_equal(const rt::DistStats& x, const rt::DistStats& y) {
  return x.messages == y.messages && x.bulk_messages == y.bulk_messages &&
         x.local_reads == y.local_reads &&
         x.remote_reads == y.remote_reads &&
         x.iterations == y.iterations && x.tests == y.tests &&
         x.steps == y.steps && x.sim_time == y.sim_time;
}

}  // namespace

int main(int argc, char** argv) {
  i64 n = 4096;
  i64 steps = 200;
  const char* json_path = "BENCH_engine.json";
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--n=", 4) == 0) {
      n = std::atoll(argv[k] + 4);
    } else if (std::strncmp(argv[k], "--steps=", 8) == 0) {
      steps = std::atoll(argv[k] + 8);
    } else {
      json_path = argv[k];
    }
  }
  if (n < 8 || steps < 2) {
    std::fprintf(stderr, "usage: %s [--n=N] [--steps=T] [out.json]\n",
                 argv[0]);
    return 1;
  }

  std::printf(
      "=== execution-engine throughput: relaxation, n=%lld, T=%lld ===\n",
      (long long)n, (long long)steps);
  std::printf("%6s %10s %10s %10s %10s %10s %9s %9s %9s %12s %7s\n", "P",
              "fast-ms", "jit-ms", "native-ms", "interp-ms", "slow-ms",
              "jit-spd", "nat-spd", "eng-spd", "iters/sec", "fused%");

  std::string json = "{\n  \"bench\": \"engine_throughput\",\n";
  json += cat("  \"n\": ", n, ",\n  \"steps\": ", steps,
              ",\n  \"configs\": [\n");

  bool ok = true;
  bool first = true;
  std::string jit_record;
  for (i64 procs : {4, 16, 64}) {
    spmd::Program p = relaxation_program(procs, n, steps);

    rt::EngineOptions fast;  // pool, cache, aggregation, kernels
    fast.jit = false;        // pure-bytecode baseline
    rt::EngineOptions jite = fast;
    jite.jit = true;
    jite.jit_sync = true;  // deterministic swap; warmup absorbs compiles
    rt::EngineOptions interp = fast;
    interp.compiled_kernels = false;
    rt::EngineOptions slow;
    slow.threads = 1;
    slow.cache_plans = false;
    slow.compiled_kernels = false;
    slow.jit = false;

    RunResult f = run_engine(p, n, fast);
    run_engine(p, n, jite);  // warmup: compile into the .so cache
    RunResult j = run_engine(p, n, jite);
    auto native_ctx = std::make_shared<rt::EngineContext>();
    run_native(p, n, native_ctx);  // warmup: compile the driver module
    NativeRun nat = run_native(p, n, native_ctx);
    RunResult i = run_engine(p, n, interp);
    RunResult s = run_engine(p, n, slow);

    if (f.a != i.a || f.b != i.b || f.a != s.a || f.b != s.b ||
        f.a != j.a || f.b != j.b || f.a != nat.a || f.b != nat.b) {
      std::printf("  !! RESULT MISMATCH at P=%lld\n", (long long)procs);
      ok = false;
    }
    if (!stats_equal(f.stats, j.stats)) {
      std::printf("  !! JIT STATS MISMATCH at P=%lld\n    fast: %s\n    "
                  "jit:  %s\n",
                  (long long)procs, f.stats.str().c_str(),
                  j.stats.str().c_str());
      ok = false;
    }
    // Steady state must actually dispatch native code (unless no host
    // compiler exists, in which case the jit row degrades to bytecode).
    const bool have_cc = vcal::spmd::jit_toolchain_available();
    if (have_cc && j.paths.jit == 0) {
      std::printf("  !! JIT PATH NOT EXERCISED at P=%lld (%s)\n",
                  (long long)procs, j.paths.str().c_str());
      ok = false;
    }
    // With a compiler present the native row must actually run the
    // compiled module, not the bytecode fallback.
    if (have_cc && !nat.native) {
      std::printf("  !! NATIVE BACKEND FELL BACK at P=%lld (%s)\n",
                  (long long)procs, nat.error.c_str());
      ok = false;
    }
    if (!stats_equal(f.stats, i.stats) || !stats_equal(f.stats, s.stats)) {
      std::printf(
          "  !! STATS MISMATCH at P=%lld\n    fast:   %s\n    interp: "
          "%s\n    slow:   %s\n",
          (long long)procs, f.stats.str().c_str(), i.stats.str().c_str(),
          s.stats.str().c_str());
      ok = false;
    }
    // The block relaxation is fully affine: kernels on must route the
    // bulk of the elements through the fused loop, kernels off none.
    if (f.paths.fused == 0 || f.paths.interp != 0) {
      std::printf("  !! FUSED PATH NOT EXERCISED at P=%lld (%s)\n",
                  (long long)procs, f.paths.str().c_str());
      ok = false;
    }
    if (i.paths.fused != 0 || i.paths.generic != 0) {
      std::printf("  !! INTERP CONFIG RAN KERNELS at P=%lld (%s)\n",
                  (long long)procs, i.paths.str().c_str());
      ok = false;
    }
    // Aggregation bound: per clause step at most P*(P-1) bulk messages,
    // independent of n.
    if (f.stats.bulk_messages > steps * procs * (procs - 1)) {
      std::printf("  !! BULK BOUND VIOLATED at P=%lld\n", (long long)procs);
      ok = false;
    }

    double kern_spd = f.wall_ms > 0.0 ? i.wall_ms / f.wall_ms : 0.0;
    double eng_spd = f.wall_ms > 0.0 ? s.wall_ms / f.wall_ms : 0.0;
    double jit_spd = j.wall_ms > 0.0 ? f.wall_ms / j.wall_ms : 0.0;
    double nat_spd = nat.wall_ms > 0.0 ? j.wall_ms / nat.wall_ms : 0.0;
    double nips = nat.wall_ms > 0.0
                      ? static_cast<double>(f.stats.iterations) /
                            (nat.wall_ms / 1000.0)
                      : 0.0;
    double ips = f.wall_ms > 0.0
                     ? static_cast<double>(f.stats.iterations) /
                           (f.wall_ms / 1000.0)
                     : 0.0;
    double jips = j.wall_ms > 0.0
                      ? static_cast<double>(j.stats.iterations) /
                            (j.wall_ms / 1000.0)
                      : 0.0;
    i64 total = f.paths.fused + f.paths.generic + f.paths.interp;
    double fused_pct =
        total > 0 ? 100.0 * static_cast<double>(f.paths.fused) /
                        static_cast<double>(total)
                  : 0.0;
    std::printf(
        "%6lld %10.1f %10.1f %10.1f %10.1f %10.1f %8.2fx %8.2fx %8.2fx "
        "%12s %6.1f%%\n",
        (long long)procs, f.wall_ms, j.wall_ms, nat.wall_ms, i.wall_ms,
        s.wall_ms, jit_spd, nat_spd, eng_spd,
        with_commas((i64)ips).c_str(), fused_pct);

    if (procs == 4) {
      // The headline records: bytecode vs per-clause JIT vs the
      // whole-program native backend, all at the canonical shape.
      jit_record = cat("  \"jit\": {\"procs\": 4, \"have_compiler\": ",
                       have_cc ? "true" : "false",
                       ", \"bytecode_iters_per_sec\": ", ips,
                       ", \"jit_iters_per_sec\": ", jips,
                       ", \"speedup\": ", jit_spd,
                       ", \"jit_elements\": ", j.paths.jit, "},\n");
      jit_record += cat("  \"native\": {\"procs\": 4, \"ran_native\": ",
                        nat.native ? "true" : "false",
                        ", \"wall_ms\": ", nat.wall_ms,
                        ", \"native_iters_per_sec\": ", nips,
                        ", \"speedup_vs_jit\": ", nat_spd, "},\n");
    }

    if (!first) json += ",\n";
    first = false;
    json += cat("    {\"procs\": ", procs, ", \"wall_ms_fast\": ",
                f.wall_ms, ", \"wall_ms_jit\": ", j.wall_ms,
                ", \"wall_ms_native\": ", nat.wall_ms,
                ", \"wall_ms_interp\": ", i.wall_ms,
                ", \"wall_ms_slow\": ", s.wall_ms,
                ", \"jit_speedup\": ", jit_spd,
                ", \"native_speedup_vs_jit\": ", nat_spd,
                ", \"native_iters_per_sec\": ", nips,
                ", \"kernel_speedup\": ", kern_spd,
                ", \"speedup\": ", eng_spd, ", \"iters_per_sec\": ", ips,
                ", \"jit_iters_per_sec\": ", jips,
                ", \"messages\": ", f.stats.messages,
                ", \"bulk_messages\": ", f.stats.bulk_messages,
                ", \"plan_cache_hits\": ", f.cache_hits,
                ", \"plan_cache_misses\": ", f.cache_misses,
                ", \"fused\": ", f.paths.fused,
                ", \"generic\": ", f.paths.generic,
                ", \"jit_elements\": ", j.paths.jit,
                ", \"sim_time\": ", f.stats.sim_time, "}");
  }
  json += cat("\n  ],\n", jit_record,
              "  \"schema\": \"engine_throughput/v3\"\n}\n");

  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::printf("\n!! could not write %s\n", json_path);
    ok = false;
  }

  std::printf(
      "\nfast = pool + bulk aggregation + plan cache + compiled kernels "
      "(jit off);\njit = fast + per-clause native codegen, steady state "
      "after a warmup run\n(jit-spd isolates that layer); native = the "
      "whole emitted OpenMP C program\ncompiled and run as one binary "
      "(nat-spd = jit-ms / native-ms); interp =\nfast with kernels off; "
      "slow = serial ranks, plans rebuilt every step,\ninterpreter. "
      "Results are verified identical; only wall clock differs.\n"
      "Compare iters/sec across builds for engine-to-engine speedups.\n");
  return ok ? 0 : 1;
}
