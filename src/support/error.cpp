#include "support/error.hpp"

namespace vcal {

ParseError::ParseError(const std::string& what, int line, int col)
    : Error("parse error at " + std::to_string(line) + ":" +
            std::to_string(col) + ": " + what),
      line_(line),
      col_(col) {}

void raise_internal(const char* msg) {
  throw InternalError(std::string("internal invariant violated: ") + msg);
}

void require(bool cond, const std::string& msg) {
  if (!cond) throw InternalError("internal invariant violated: " + msg);
}

}  // namespace vcal
