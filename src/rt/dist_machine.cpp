#include "rt/dist_machine.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "decomp/redistribute.hpp"
#include "obs/metrics.hpp"
#include "rt/channel.hpp"
#include "spmd/comm_schedule.hpp"
#include "spmd/kernel.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace vcal::rt {

using prog::Clause;
using spmd::ClausePlan;

std::string DistStats::str() const {
  obs::MetricsRegistry reg;
  obs::collect(reg, *this);
  return reg.line();
}

DistMachine::DistMachine(spmd::Program program, gen::BuildOptions opts,
                         CostModel cost, EngineOptions engine,
                         std::shared_ptr<EngineContext> ctx,
                         const std::string& plan_scope)
    : program_(std::move(program)),
      opts_(opts),
      cost_(cost),
      engine_(engine),
      ctx_(ctx ? std::move(ctx) : std::make_shared<EngineContext>()),
      store_(program_.procs) {
  program_.validate();
  plans_ = PlanLease(ctx_, plan_scope);
  if (engine_.threads > 1)
    pool_ = std::make_unique<support::ThreadPool>(engine_.threads);
  if (engine_.trace) {
    tracer_ = ctx_->make_tracer(program_.procs, engine_.trace_capacity);
    plans_->set_tracer(tracer_, tracer_->control_lane());
  }
  message_matrix_.assign(
      static_cast<std::size_t>(program_.procs),
      std::vector<i64>(static_cast<std::size_t>(program_.procs), 0));
  for (const auto& [name, desc] : program_.arrays) store_.declare(desc);
}

void DistMachine::load(const std::string& name,
                       const std::vector<double>& dense) {
  auto it = program_.arrays.find(name);
  require(it != program_.arrays.end(), "DistMachine::load unknown " + name);
  store_.load(it->second, dense);
}

void DistMachine::run() {
  for (const spmd::Step& step : program_.steps) {
    if (const auto* clause = std::get_if<Clause>(&step))
      run_clause(*clause);
    else
      run_redistribute(std::get<spmd::RedistStep>(step));
  }
}

void DistMachine::for_ranks(i64 n, const std::function<void(i64)>& body) {
  if (engine_.threads == 1) {
    for (i64 r = 0; r < n; ++r) body(r);
    return;
  }
  support::ThreadPool& pool =
      pool_ ? *pool_ : support::ThreadPool::shared();
  pool.parallel_for_ranks(n, body);
}

template <typename F>
void DistMachine::for_ranks_t(i64 n, F&& body) {
  if (engine_.threads == 1) {
    for (i64 r = 0; r < n; ++r) body(r);
    return;
  }
  support::ThreadPool& pool =
      pool_ ? *pool_ : support::ThreadPool::shared();
  pool.parallel_for_ranks(n, body);
}

void DistMachine::finish_step(const std::vector<RankCounters>& counters) {
  double slowest = 0.0;
  i64 halo_bulk = 0, halo_values = 0;
  i64 iters = 0, tests = 0, transfers = 0, bulk = 0;
  for (const RankCounters& c : counters) {
    stats_.messages += c.sends;
    stats_.bulk_messages += c.bulk_sends;
    stats_.local_reads += c.local_reads;
    stats_.remote_reads += c.remote_reads;
    stats_.iterations += c.iterations;
    stats_.tests += c.tests;
    halo_bulk += c.halo_bulk;
    halo_values += c.halo_values;
    stats_.halo_reads += c.halo_reads;
    slowest = std::max(slowest, c.time(cost_));
    iters += c.iterations;
    tests += c.tests;
    transfers += c.sends + c.receives;
    bulk += c.bulk_sends + c.bulk_receives;
  }
  // halo_bulk/halo_values are recorded on both endpoints; the aggregate
  // counts each exchange once.
  stats_.halo_messages += halo_bulk / 2;
  stats_.halo_values += halo_values / 2;
  stats_.sim_time += slowest;
  ++stats_.steps;
  last_counters_ = counters;
  if (tracer_) {
    // Publish the cost-model clock and the step's aggregate predictors
    // on the control lane: the calibration fit's raw material.
    tracer_->set_virtual_time(stats_.sim_time);
    tracer_->record(tracer_->control_lane(), obs::EventKind::StepCounters,
                    stats_.steps - 1, iters, tests, transfers, bulk);
  }
}


// Phase 0 of every clause (tagged or scheduled): every referenced array
// with a halo gets its boundary copies refreshed with pre-clause values
// — one bulk exchange per (owner, neighbour) pair. Near-boundary remote
// reads in phase 2 then stay local. halos[name][rank] maps global index
// -> cached value. `snap` is the copy-in snapshot when the clause reads
// its own target (senders must observe pre-clause values), else null.
void DistMachine::refresh_halos(const Clause& clause, const ClausePlan& plan,
                                const std::vector<std::vector<double>>* snap,
                                std::vector<RankCounters>& counters,
                                HaloTable& halos, i64 step_id) {
  obs::Tracer* tr = tracer_;
  const i64 ctl = tr ? tr->control_lane() : 0;
  const i64 procs = plan.procs();
  const int nrefs = static_cast<int>(clause.refs.size());
  auto read_element = [&](int r, i64 rank, i64 local) -> double {
    const std::string& name =
        clause.refs[static_cast<std::size_t>(r)].array;
    if (snap && name == clause.lhs_array) {
      const auto& buf = (*snap)[static_cast<std::size_t>(rank)];
      if (!in_range(local, 0, static_cast<i64>(buf.size()) - 1))
        throw RuntimeFault("local read out of bounds on " + name);
      return buf[static_cast<std::size_t>(local)];
    }
    return store_.read_local(name, rank, local);
  };
  for (int r = 0; r < nrefs; ++r) {
    const decomp::ArrayDesc& rd = plan.ref_desc(r);
    if (rd.halo() == 0 || halos.count(rd.name())) continue;
    auto& table = halos[rd.name()];
    table.assign(static_cast<std::size_t>(procs), {});
    // Each rank fills its own halo copies; the owner-side halo counters
    // are cross-rank, so they accumulate in per-rank scratch rows and
    // merge after the join (sums are order-independent).
    std::vector<std::vector<i64>> owner_bulk(
        static_cast<std::size_t>(procs),
        std::vector<i64>(static_cast<std::size_t>(procs), 0));
    std::vector<std::vector<i64>> owner_values = owner_bulk;
    VCAL_TRACE(tr, ctl, obs::EventKind::BarrierBegin, step_id, /*phase=*/0);
    for_ranks(procs, [&](i64 p) {
      VCAL_TRACE(tr, p, obs::EventKind::HaloBegin, step_id);
      RankCounters& rc = counters[static_cast<std::size_t>(p)];
      auto& ob = owner_bulk[static_cast<std::size_t>(p)];
      auto& ov = owner_values[static_cast<std::size_t>(p)];
      for (int side : {-1, 1}) {
        auto [hlo, hhi] = rd.halo_range(p, side);
        if (hlo > hhi) continue;
        i64 prev_owner = -1;
        for (i64 g = hlo; g <= hhi; ++g) {
          i64 owner = rd.owner({g});
          double v = read_element(r, owner, rd.local_linear({g}));
          table[static_cast<std::size_t>(p)][g] = v;
          if (owner != prev_owner) {
            // New bulk message from this owner to p.
            ++ob[static_cast<std::size_t>(owner)];
            ++rc.halo_bulk;
            prev_owner = owner;
          }
          ++ov[static_cast<std::size_t>(owner)];
          ++rc.halo_values;
        }
      }
      VCAL_TRACE(tr, p, obs::EventKind::HaloEnd, step_id);
    });
    VCAL_TRACE(tr, ctl, obs::EventKind::BarrierEnd, step_id, /*phase=*/0);
    for (i64 p = 0; p < procs; ++p)
      for (i64 o = 0; o < procs; ++o) {
        counters[static_cast<std::size_t>(o)].halo_bulk +=
            owner_bulk[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(o)];
        counters[static_cast<std::size_t>(o)].halo_values +=
            owner_values[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(o)];
      }
  }
}

const spmd::JitFns* DistMachine::jit_poll(const std::string& key,
                                          const Clause& clause,
                                          const spmd::ClauseKernel& kern,
                                          spmd::JitState** js, i64 step_id) {
  obs::Tracer* tr = tracer_;
  const i64 ctl = tr ? tr->control_lane() : 0;
  JitSlot& slot = jit_states_[key];
  if (!ctx_->jit().available()) {
    // No toolchain on this host: never arm (a compile job could only
    // fail). A single fallback per clause key records that JIT was
    // requested but cannot happen here.
    if (!slot.no_toolchain_noted) {
      slot.no_toolchain_noted = true;
      ++jit_.fallbacks;
    }
    return nullptr;
  }
  if (!slot.state || slot.epoch != plans_->epoch()) {
    // A redistribution invalidated whatever this key had compiled; if
    // the old state was armed, the next executions run bytecode again —
    // count that as a fallback, then re-arm from scratch.
    if (slot.state && slot.state->armed()) ++jit_.fallbacks;
    slot.state = std::make_shared<spmd::JitState>();
    slot.epoch = plans_->epoch();
  }
  spmd::JitConfig cfg;
  cfg.enabled = true;
  cfg.threshold = engine_.jit_threshold;
  cfg.sync = engine_.jit_sync;
  cfg.cache_dir = engine_.jit_cache_dir;
  cfg.engine = &ctx_->jit();
  spmd::JitPoll r = slot.state->poll(clause, kern, cfg, jit_);
  if (r.launched)
    VCAL_TRACE(tr, ctl, obs::EventKind::JitBuild, step_id, cfg.sync ? 1 : 0);
  if (r.swapped)
    VCAL_TRACE(tr, ctl, obs::EventKind::JitSwap, step_id, r.cached ? 0 : 1);
  *js = slot.state.get();
  return r.fns;
}

void DistMachine::run_clause(const Clause& clause) {
  if (clause.ord == prog::Ordering::Seq)
    throw CodegenError(
        "sequential ('•') clauses are not supported on the distributed "
        "target; the paper leaves DOACROSS orderings out of scope");

  obs::Tracer* tr = tracer_;
  const i64 ctl = tr ? tr->control_lane() : 0;
  const i64 step_id = stats_.steps;  // index of the step now executing

  // Faults armed for this step (stats_.steps counts completed steps, so
  // it is the index of the step now executing). Collected before the
  // schedule dispatch: any armed fault forces the tagged path, so the
  // perturbation machinery always sees real channels.
  std::vector<const FaultPlan*> active_faults;
  for (const FaultPlan& f : faults_)
    if (f.step == stats_.steps && f.kind != FaultPlan::Kind::None)
      active_faults.push_back(&f);
  const bool fault_armed = !active_faults.empty();

  VCAL_TRACE(tr, ctl, obs::EventKind::ClauseBegin, step_id);

  // Plans are pure compile-time data; iterative programs reuse them
  // until a redistribution bumps the epoch. The cache key (the clause's
  // printed form) is memoized per program step, so repeat executions
  // look it up without rebuilding the string.
  const std::string* key = nullptr;
  std::optional<ClausePlan> uncached;
  if (!engine_.cache_plans) {
    uncached.emplace(ClausePlan::build(clause, program_.arrays, opts_));
  } else {
    auto [ki, fresh] = step_keys_.try_emplace(&clause, std::string{});
    if (fresh) ki->second = clause.str();
    key = &ki->second;
  }
  const ClausePlan& plan =
      uncached ? *uncached
               : plans_->get(*key, clause, program_.arrays, opts_);

  // Kernel path: bytecode RHS/guard plus affine subscript strides (see
  // spmd/kernel.hpp). Observably identical to the interpreter; kaff
  // additionally enables the strided-run analysis in both phases.
  const spmd::ClauseKernel* kern =
      engine_.compiled_kernels ? &plan.kernel() : nullptr;
  const bool kaff = kern != nullptr && kern->affine();

  // JIT dispatch: poll the per-key state once per execution (arming
  // counter, compile status, pointer swap). Requires the cached affine
  // kernel path; armed faults keep the fully observable bytecode.
  spmd::JitState* js = nullptr;
  const spmd::JitFns* jfns = nullptr;
  if (engine_.jit && kaff && key && !fault_armed)
    jfns = jit_poll(*key, clause, *kern, &js, step_id);

  // Communication-schedule dispatch (inspector–executor): replay when a
  // schedule exists for this plan at the current epoch; record one on
  // the second clean execution (the first proves the pattern repeats;
  // single-shot clauses never pay the inspector); otherwise run the
  // tagged path. Armed faults and uncached plans always fall back.
  spmd::CommSchedule* rec = nullptr;
  std::unique_ptr<spmd::CommSchedule> rec_owner;
  if (engine_.comm_schedules) {
    if (!engine_.cache_plans || fault_armed) {
      ++comm_.sched_fallbacks;
      VCAL_TRACE(tr, ctl, obs::EventKind::SchedFallback, step_id,
                 fault_armed ? 1 : 0);
    } else {
      if (auto* cs = static_cast<spmd::CommSchedule*>(
              plans_->find_schedule(*key))) {
        run_clause_scheduled(clause, plan, *cs, js, jfns);
        return;
      }
      auto [si, first] =
          key_seen_.try_emplace(*key, KeySeen{plans_->epoch(), 0});
      if (!first && si->second.epoch != plans_->epoch())
        si->second = KeySeen{plans_->epoch(), 0};
      if (si->second.seen >= 1) {
        rec_owner = std::make_unique<spmd::CommSchedule>();
        rec_owner->init(plan.procs(), static_cast<int>(clause.loops.size()),
                        static_cast<int>(clause.refs.size()));
        rec = rec_owner.get();
      }
      ++si->second.seen;
    }
  }
  std::vector<std::vector<i64>> matrix_before;
  if (rec) matrix_before = message_matrix_;
  // Recording steps must run the bytecode loop: the note_* hooks have
  // to observe every element the inspector will replay.
  if (rec) jfns = nullptr;

  const decomp::ArrayDesc& lhs = plan.lhs_desc();
  const i64 procs = plan.procs();
  const int nrefs = static_cast<int>(clause.refs.size());
  const int inner = static_cast<int>(clause.loops.size()) - 1;

  // Copy-in snapshot when the clause reads its own target: senders and
  // local reads must observe pre-clause values.
  bool lhs_read = false;
  for (const prog::ArrayRef& r : clause.refs)
    if (r.array == clause.lhs_array) lhs_read = true;
  std::optional<std::vector<std::vector<double>>> snap;
  if (lhs_read) snap = store_.clone(clause.lhs_array);

  // Pre-clause source row for ref r on `rank`: the copy-in snapshot when
  // the clause reads its own target, the live store row otherwise.
  // Resolved once per (ref, rank) so the phase loops read through a plain
  // pointer instead of a string-keyed lookup per element.
  auto ref_row = [&](int r, i64 rank) -> const std::vector<double>& {
    const std::string& name =
        clause.refs[static_cast<std::size_t>(r)].array;
    if (snap && name == clause.lhs_array)
      return (*snap)[static_cast<std::size_t>(rank)];
    return store_.local_row(name, rank);
  };
  auto read_row = [&](const std::vector<double>& row, i64 local,
                      int r) -> double {
    if (!in_range(local, 0, static_cast<i64>(row.size()) - 1))
      throw RuntimeFault(
          "local read out of bounds on " +
          clause.refs[static_cast<std::size_t>(r)].array);
    return row[static_cast<std::size_t>(local)];
  };

  // In-flight messages: one bulk channel per (src, dst) rank pair.
  std::vector<Channel> channels(
      static_cast<std::size_t>(procs * procs));
  for (Channel& ch : channels) ch.keyed = engine_.keyed_channels;
  auto channel = [&](i64 src, i64 dst) -> Channel& {
    return channels[static_cast<std::size_t>(src * procs + dst)];
  };
  std::vector<RankCounters> counters(static_cast<std::size_t>(procs));
  std::vector<PathCounters> pcs(static_cast<std::size_t>(procs));

  auto valid_channel = [&](const FaultPlan& f) {
    return in_range(f.src, 0, procs - 1) && in_range(f.dst, 0, procs - 1);
  };

  // ---- Phase 0: halo refresh for overlapped decompositions -----------
  HaloTable halos;
  refresh_halos(clause, plan, snap ? &*snap : nullptr, counters, halos,
                step_id);
  auto halo_covers = [&](const decomp::ArrayDesc& rd, i64 rank,
                         const std::vector<i64>& idx) {
    return rd.halo() > 0 && halos.count(rd.name()) &&
           rd.in_halo(rank, idx);
  };

  // ---- Phase 1: non-blocking sends (Reside_p \ Modify_p) -------------
  // Rank p writes only its own channel row, counter slot, and
  // message-matrix row, so the loop parallelizes without locks.
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierBegin, step_id, /*phase=*/1);
  for_ranks(procs, [&](i64 p) {
    VCAL_TRACE(tr, p, obs::EventKind::SendBegin, step_id);
    RankCounters& rc = counters[static_cast<std::size_t>(p)];
    PathCounters& pc = pcs[static_cast<std::size_t>(p)];
    auto& matrix_row = message_matrix_[static_cast<std::size_t>(p)];
    std::vector<i64> ridx, out_idx;  // per-rank scratch
    spmd::ArrayAddr lhs_addr;
    std::vector<i64> g0r, dgr, g0l, dgl;
    if (kaff) {
      lhs_addr = spmd::make_local_addr(lhs, p);
      g0l.resize(static_cast<std::size_t>(lhs.ndims()));
      dgl.resize(static_cast<std::size_t>(lhs.ndims()));
    }
    for (int r = 0; r < nrefs; ++r) {
      if (!plan.ref_needs_comm(r)) continue;  // replicated: always local
      gen::EnumStats es;
      const decomp::ArrayDesc& rd = plan.ref_desc(r);
      const std::vector<double>& row = ref_row(r, p);
      const spmd::IterationSpace& space = plan.reside_space(p, r);
      if (!kaff) {
        space.for_each(
            [&](const std::vector<i64>& vals) {
              plan.ref_index_into(r, vals, ridx);
              if (!rd.in_bounds(ridx))
                throw RuntimeFault("read out of bounds on " +
                                   clause.refs[static_cast<std::size_t>(r)]
                                       .array);
              i64 local = rd.local_linear(ridx);
              double value = read_row(row, local, r);
              i64 tag = plan.message_tag(r, vals);
              if (lhs.is_replicated()) {
                // Every rank computes every index: broadcast to the others.
                for (i64 dst = 0; dst < procs; ++dst) {
                  if (dst == p) continue;
                  if (halo_covers(rd, dst, ridx))
                    continue;  // receiver reads its halo copy
                  Channel& ch = channel(p, dst);
                  ch.push(tag, value);
                  if (rec)
                    ch.meta.emplace_back(static_cast<std::int32_t>(r), local);
                  ++rc.sends;
                  ++matrix_row[static_cast<std::size_t>(dst)];
                }
              } else {
                plan.lhs_index_into(vals, out_idx);
                if (!lhs.in_bounds(out_idx)) return;  // nobody computes this
                i64 dst = lhs.owner(out_idx);
                if (dst == p) return;  // Modify ∩ Reside: local update later
                if (halo_covers(rd, dst, ridx))
                  return;  // receiver reads its halo copy
                Channel& ch = channel(p, dst);
                ch.push(tag, value);
                if (rec)
                  ch.meta.emplace_back(static_cast<std::int32_t>(r), local);
                ++rc.sends;
                ++matrix_row[static_cast<std::size_t>(dst)];
              }
            },
            &es);
        pc.interp += space.count();
      } else {
        spmd::ArrayAddr ref_addr = spmd::make_local_addr(rd, p);
        const std::vector<spmd::AffineSub>& rsubs = kern->ref_subs(r);
        const std::vector<spmd::AffineSub>& lsubs = kern->lhs_subs();
        g0r.resize(rsubs.size());
        dgr.resize(rsubs.size());
        // Per-element send decision through the kernel's affine
        // subscripts; same routing, counters, and exceptions as the
        // interpreter body above.
        auto emit = [&](const std::vector<i64>& vals) {
          spmd::ClauseKernel::subs_into(rsubs, vals.data(), ridx);
          if (!rd.in_bounds(ridx))
            throw RuntimeFault("read out of bounds on " +
                               clause.refs[static_cast<std::size_t>(r)]
                                   .array);
          i64 local = rd.local_linear(ridx);
          double value = read_row(row, local, r);
          i64 tag = kern->tag(r, vals.data());
          if (lhs.is_replicated()) {
            for (i64 dst = 0; dst < procs; ++dst) {
              if (dst == p) continue;
              if (halo_covers(rd, dst, ridx)) continue;
              Channel& ch = channel(p, dst);
              ch.push(tag, value);
              if (rec)
                ch.meta.emplace_back(static_cast<std::int32_t>(r), local);
              ++rc.sends;
              ++matrix_row[static_cast<std::size_t>(dst)];
            }
          } else {
            spmd::ClauseKernel::subs_into(lsubs, vals.data(), out_idx);
            if (!lhs.in_bounds(out_idx)) return;
            i64 dst = lhs.owner(out_idx);
            if (dst == p) return;
            if (halo_covers(rd, dst, ridx)) return;
            Channel& ch = channel(p, dst);
            ch.push(tag, value);
            if (rec)
              ch.meta.emplace_back(static_cast<std::int32_t>(r), local);
            ++rc.sends;
            ++matrix_row[static_cast<std::size_t>(dst)];
          }
        };
        space.for_each_run(
            [&](std::vector<i64>& vals, const gen::Piece& run) {
              // Elements whose LHS target this rank itself owns send
              // nothing (Modify ∩ Reside); when a strided-run proof
              // covers both sides — ref in bounds, stored here, and LHS
              // in bounds, owned here — the whole subrange is skipped
              // without touching it. Run edges and unprovable runs go
              // element at a time.
              i64 k0 = 0, k1 = -1;
              if (!lhs.is_replicated()) {
                spmd::StridedRun rr, lr;
                spmd::fill_progression(rsubs, vals, inner, run, g0r.data(),
                                 dgr.data());
                bool ok = spmd::strided_run(ref_addr, g0r.data(),
                                            dgr.data(), run.count, &rr);
                if (ok) {
                  spmd::fill_progression(lsubs, vals, inner, run, g0l.data(),
                                   dgl.data());
                  ok = spmd::strided_run(lhs_addr, g0l.data(), dgl.data(),
                                         run.count, &lr);
                }
                if (ok) {
                  k0 = std::max(rr.k_lo, lr.k_lo);
                  k1 = std::min(rr.k_hi, lr.k_hi);
                }
                if (k1 < k0) {
                  k0 = 0;
                  k1 = -1;
                }
              }
              for (i64 k = 0; k < k0; ++k) {
                vals[static_cast<std::size_t>(inner)] =
                    run.start + k * run.stride;
                emit(vals);
              }
              for (i64 k = k1 + 1; k < run.count; ++k) {
                vals[static_cast<std::size_t>(inner)] =
                    run.start + k * run.stride;
                emit(vals);
              }
              const i64 skipped = k1 >= k0 ? k1 - k0 + 1 : 0;
              pc.fused += skipped;
              pc.generic += run.count - skipped;
            },
            &es);
      }
      rc.iterations += es.loop_iters;
      rc.tests += es.tests;
    }
    // Pack this rank's outgoing traffic: one sorted bulk message per
    // destination it actually sends to.
    for (i64 dst = 0; dst < procs; ++dst) {
      Channel& ch = channel(p, dst);
      if (ch.msgs.empty()) continue;
      ch.pack();
      ++rc.bulk_sends;
      VCAL_TRACE(tr, p, obs::EventKind::MsgSend, step_id, dst,
                 static_cast<i64>(ch.msgs.size()));
    }
    VCAL_TRACE(tr, p, obs::EventKind::SendEnd, step_id);
  });
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierEnd, step_id, /*phase=*/1);
  // The virtual network misbehaves here, between send completion and the
  // first receive: armed message faults perturb the packed channels.
  for (const FaultPlan* f : active_faults) {
    bool applied = false;
    switch (f->kind) {
      case FaultPlan::Kind::DropMessage:
        applied = valid_channel(*f) && channel(f->src, f->dst).drop(f->index);
        break;
      case FaultPlan::Kind::DuplicateMessage:
        applied =
            valid_channel(*f) && channel(f->src, f->dst).duplicate(f->index);
        break;
      case FaultPlan::Kind::ReorderChannel:
        applied = valid_channel(*f) && channel(f->src, f->dst).reorder();
        break;
      default:
        break;
    }
    if (applied) ++faults_applied_;
  }

  // Receiver-side bulk accounting (cross-rank: done serially).
  for (i64 src = 0; src < procs; ++src)
    for (i64 dst = 0; dst < procs; ++dst)
      if (!channel(src, dst).msgs.empty()) {
        ++counters[static_cast<std::size_t>(dst)].bulk_receives;
        // Serial section: writing the dst lane from here is race-free.
        VCAL_TRACE(tr, dst, obs::EventKind::MsgRecv, step_id, src,
                   static_cast<i64>(channel(src, dst).msgs.size()));
      }

  // ---- Phase 2: receive and update (Modify_p) -------------------------
  // Rank p consumes only channels destined to it and writes only its own
  // local LHS buffer; all other reads are pre-clause values.
  auto phase2_interp = [&](i64 p) {
    RankCounters& rc = counters[static_cast<std::size_t>(p)];
    std::vector<double> ref_values(clause.refs.size());
    std::vector<i64> ridx, out_idx;  // per-rank scratch
    std::vector<const std::vector<double>*> rows(
        static_cast<std::size_t>(nrefs));
    for (int r = 0; r < nrefs; ++r)
      rows[static_cast<std::size_t>(r)] = &ref_row(r, p);
    std::vector<double>& out_row =
        store_.local_row_mut(clause.lhs_array, p);
    gen::EnumStats es;
    const spmd::IterationSpace& space = plan.modify_space(p);
    space.for_each(
        [&](const std::vector<i64>& vals) {
          plan.lhs_index_into(vals, out_idx);
          if (!lhs.in_bounds(out_idx))
            throw RuntimeFault("write out of bounds on " +
                               clause.lhs_array);
          for (int r = 0; r < nrefs; ++r) {
            const decomp::ArrayDesc& rd = plan.ref_desc(r);
            plan.ref_index_into(r, vals, ridx);
            if (!rd.in_bounds(ridx))
              throw RuntimeFault(
                  "read out of bounds on " +
                  clause.refs[static_cast<std::size_t>(r)].array);
            const std::vector<double>& row =
                *rows[static_cast<std::size_t>(r)];
            if (rd.is_replicated()) {
              i64 local = rd.local_linear(ridx);
              ref_values[static_cast<std::size_t>(r)] =
                  read_row(row, local, r);
              ++rc.local_reads;
              if (rec) rec->note_local(p, r, local);
              continue;
            }
            i64 src = rd.owner(ridx);
            if (src == p) {
              i64 local = rd.local_linear(ridx);
              ref_values[static_cast<std::size_t>(r)] =
                  read_row(row, local, r);
              ++rc.local_reads;
              if (rec) rec->note_local(p, r, local);
            } else if (halo_covers(rd, p, ridx)) {
              // Overlapped decomposition: the value is already cached in
              // this rank's halo region.
              const auto& cache =
                  halos.at(rd.name())[static_cast<std::size_t>(p)];
              auto hit = cache.find(ridx[0]);
              require(hit != cache.end(),
                      "halo cache missing a covered element");
              ref_values[static_cast<std::size_t>(r)] = hit->second;
              ++rc.halo_reads;
              if (rec) rec->note_halo(p, r, ridx[0]);
            } else {
              // Blocking receive from the in-flight bulk message.
              i64 tag = plan.message_tag(r, vals);
              Channel& ch = channel(src, p);
              const double* value = ch.consume(tag);
              if (value == nullptr) {
                std::string elem =
                    clause.refs[static_cast<std::size_t>(r)].array + "[";
                for (std::size_t d = 0; d < ridx.size(); ++d)
                  elem += cat(d ? ", " : "", ridx[d]);
                elem += "]";
                std::string diag = cat(
                    "deadlock: rank ", p, " blocked on pending receive of ",
                    elem, " (tag ", tag, ") from rank ", src,
                    ", which never sent it — inconsistent schedules or a "
                    "lost message");
                if (tr) {
                  diag += cat("; last traced event on rank ", p, ": ",
                              tr->last_event_str(p));
                  tr->record(p, obs::EventKind::RecvWait, step_id, src, tag);
                }
                throw DeadlockError(diag);
              }
              ref_values[static_cast<std::size_t>(r)] = *value;
              ++rc.receives;
              ++rc.remote_reads;
              if (rec)
                rec->note_remote(p, r, src, static_cast<i64>(ch.last_k));
            }
          }
          if (rec) {
            // Record before the guard: replay evaluates guards live, so
            // guarded-off elements must still carry their operand
            // offsets. -1 encodes "the tagged path would fault on an
            // in-range-guarded write".
            i64 rslot = lhs.local_linear(out_idx);
            if (!in_range(rslot, 0, static_cast<i64>(out_row.size()) - 1))
              rslot = -1;
            rec->note_element(p, rslot, vals.data());
          }
          if (clause.guard && !clause.guard->holds(ref_values, vals)) return;
          double value = prog::eval(clause.rhs, ref_values, vals);
          i64 slot = lhs.local_linear(out_idx);
          if (!in_range(slot, 0, static_cast<i64>(out_row.size()) - 1))
            throw RuntimeFault("local write out of bounds on " +
                               clause.lhs_array);
          out_row[static_cast<std::size_t>(slot)] = value;
        },
        &es);
    rc.iterations += es.loop_iters;
    rc.tests += es.tests;
    pcs[static_cast<std::size_t>(p)].interp += space.count();
  };

  // Kernel phase 2: same element order, counters, and exceptions as
  // phase2_interp, with provably-local subranges of each innermost run
  // fused into one strided loop over the local rows.
  auto phase2_kernel = [&](i64 p) {
    RankCounters& rc = counters[static_cast<std::size_t>(p)];
    PathCounters& pc = pcs[static_cast<std::size_t>(p)];
    std::vector<double> ref_values(clause.refs.size());
    std::vector<i64> ridx, out_idx;  // per-rank scratch
    std::vector<const std::vector<double>*> rows(
        static_cast<std::size_t>(nrefs));
    for (int r = 0; r < nrefs; ++r)
      rows[static_cast<std::size_t>(r)] = &ref_row(r, p);
    std::vector<double>& out_row =
        store_.local_row_mut(clause.lhs_array, p);
    std::vector<double> stack(static_cast<std::size_t>(kern->stack_need()));
    const spmd::CompiledGuard* guard = kern->guard();
    const spmd::CompiledExpr& rhs = kern->rhs();
    spmd::ArrayAddr lhs_addr = spmd::make_local_addr(lhs, p);
    std::vector<spmd::ArrayAddr> raddrs;
    raddrs.reserve(static_cast<std::size_t>(nrefs));
    for (int r = 0; r < nrefs; ++r)
      raddrs.push_back(spmd::make_local_addr(plan.ref_desc(r), p));
    std::vector<i64> g0l(static_cast<std::size_t>(lhs.ndims()));
    std::vector<i64> dgl(static_cast<std::size_t>(lhs.ndims()));
    std::vector<std::vector<i64>> g0s(static_cast<std::size_t>(nrefs));
    std::vector<std::vector<i64>> dgs(static_cast<std::size_t>(nrefs));
    for (int r = 0; r < nrefs; ++r) {
      g0s[static_cast<std::size_t>(r)].resize(
          static_cast<std::size_t>(plan.ref_desc(r).ndims()));
      dgs[static_cast<std::size_t>(r)].resize(
          static_cast<std::size_t>(plan.ref_desc(r).ndims()));
    }
    std::vector<spmd::StridedRun> rruns(static_cast<std::size_t>(nrefs));
    std::vector<i64> raddr(static_cast<std::size_t>(nrefs));
    std::vector<i64> rstride(static_cast<std::size_t>(nrefs));
    std::vector<const double*> row_ptrs(static_cast<std::size_t>(nrefs));
    for (int r = 0; r < nrefs; ++r)
      row_ptrs[static_cast<std::size_t>(r)] =
          rows[static_cast<std::size_t>(r)]->data();

    // Element-at-a-time body: the interpreter's phase 2 verbatim, with
    // subscripts/tags/guard/RHS routed through the kernel.
    auto element = [&](const std::vector<i64>& vals) {
      spmd::ClauseKernel::subs_into(kern->lhs_subs(), vals.data(), out_idx);
      if (!lhs.in_bounds(out_idx))
        throw RuntimeFault("write out of bounds on " + clause.lhs_array);
      for (int r = 0; r < nrefs; ++r) {
        const decomp::ArrayDesc& rd = plan.ref_desc(r);
        spmd::ClauseKernel::subs_into(kern->ref_subs(r), vals.data(), ridx);
        if (!rd.in_bounds(ridx))
          throw RuntimeFault(
              "read out of bounds on " +
              clause.refs[static_cast<std::size_t>(r)].array);
        const std::vector<double>& row =
            *rows[static_cast<std::size_t>(r)];
        if (rd.is_replicated()) {
          i64 local = rd.local_linear(ridx);
          ref_values[static_cast<std::size_t>(r)] = read_row(row, local, r);
          ++rc.local_reads;
          if (rec) rec->note_local(p, r, local);
          continue;
        }
        i64 src = rd.owner(ridx);
        if (src == p) {
          i64 local = rd.local_linear(ridx);
          ref_values[static_cast<std::size_t>(r)] = read_row(row, local, r);
          ++rc.local_reads;
          if (rec) rec->note_local(p, r, local);
        } else if (halo_covers(rd, p, ridx)) {
          const auto& cache =
              halos.at(rd.name())[static_cast<std::size_t>(p)];
          auto hit = cache.find(ridx[0]);
          require(hit != cache.end(),
                  "halo cache missing a covered element");
          ref_values[static_cast<std::size_t>(r)] = hit->second;
          ++rc.halo_reads;
          if (rec) rec->note_halo(p, r, ridx[0]);
        } else {
          i64 tag = kern->tag(r, vals.data());
          Channel& ch = channel(src, p);
          const double* value = ch.consume(tag);
          if (value == nullptr) {
            std::string elem =
                clause.refs[static_cast<std::size_t>(r)].array + "[";
            for (std::size_t d = 0; d < ridx.size(); ++d)
              elem += cat(d ? ", " : "", ridx[d]);
            elem += "]";
            std::string diag = cat(
                "deadlock: rank ", p, " blocked on pending receive of ",
                elem, " (tag ", tag, ") from rank ", src,
                ", which never sent it — inconsistent schedules or a "
                "lost message");
            if (tr) {
              diag += cat("; last traced event on rank ", p, ": ",
                          tr->last_event_str(p));
              tr->record(p, obs::EventKind::RecvWait, step_id, src, tag);
            }
            throw DeadlockError(diag);
          }
          ref_values[static_cast<std::size_t>(r)] = *value;
          ++rc.receives;
          ++rc.remote_reads;
          if (rec) rec->note_remote(p, r, src, static_cast<i64>(ch.last_k));
        }
      }
      if (rec) {
        // Pre-guard, as in phase2_interp: -1 marks a guarded OOB write.
        i64 rslot = lhs.local_linear(out_idx);
        if (!in_range(rslot, 0, static_cast<i64>(out_row.size()) - 1))
          rslot = -1;
        rec->note_element(p, rslot, vals.data());
      }
      if (guard &&
          !guard->holds(ref_values.data(), vals.data(), stack.data()))
        return;
      double value = rhs.eval(ref_values.data(), vals.data(), stack.data());
      i64 slot = lhs.local_linear(out_idx);
      if (!in_range(slot, 0, static_cast<i64>(out_row.size()) - 1))
        throw RuntimeFault("local write out of bounds on " +
                           clause.lhs_array);
      out_row[static_cast<std::size_t>(slot)] = value;
    };

    gen::EnumStats es;
    const spmd::IterationSpace& space = plan.modify_space(p);
    space.for_each_run(
        [&](std::vector<i64>& vals, const gen::Piece& run) {
          spmd::StridedRun lrun;
          spmd::fill_progression(kern->lhs_subs(), vals, inner, run, g0l.data(),
                           dgl.data());
          bool fuse = spmd::strided_run(lhs_addr, g0l.data(), dgl.data(),
                                        run.count, &lrun);
          i64 k0 = lrun.k_lo, k1 = lrun.k_hi;
          for (int r = 0; fuse && r < nrefs; ++r) {
            auto ur = static_cast<std::size_t>(r);
            spmd::fill_progression(kern->ref_subs(r), vals, inner, run,
                             g0s[ur].data(), dgs[ur].data());
            fuse = spmd::strided_run(raddrs[ur], g0s[ur].data(),
                                     dgs[ur].data(), run.count, &rruns[ur]);
            if (fuse) {
              k0 = std::max(k0, rruns[ur].k_lo);
              k1 = std::min(k1, rruns[ur].k_hi);
            }
          }
          fuse = fuse && k0 <= k1;
          if (!fuse) {
            for (i64 k = 0; k < run.count; ++k) {
              vals[static_cast<std::size_t>(inner)] =
                  run.start + k * run.stride;
              element(vals);
            }
            pc.generic += run.count;
            return;
          }
          for (i64 k = 0; k < k0; ++k) {
            vals[static_cast<std::size_t>(inner)] =
                run.start + k * run.stride;
            element(vals);
          }
          // Fused strided loop: every element of [k0, k1] is proven in
          // bounds and resident on this rank for the LHS and every ref,
          // so the body carries no checks, no calls through the plan,
          // and no allocations — just strided row reads, the bytecode
          // evaluator on a preallocated stack, and a strided row write.
          i64 la = lrun.addr0 + (k0 - lrun.k_lo) * lrun.stride;
          for (int r = 0; r < nrefs; ++r) {
            auto ur = static_cast<std::size_t>(r);
            raddr[ur] =
                rruns[ur].addr0 + (k0 - rruns[ur].k_lo) * rruns[ur].stride;
          }
          i64 v = run.start + k0 * run.stride;
          const i64 fused_n = k1 - k0 + 1;
          if (jfns) {
            // Every element of [k0, k1] is proven in bounds and local,
            // so the jitted loop needs only the strides: addressing
            // arrives as arguments, the guard/RHS are compiled in.
            for (int r = 0; r < nrefs; ++r)
              rstride[static_cast<std::size_t>(r)] =
                  rruns[static_cast<std::size_t>(r)].stride;
            jfns->fused(out_row.data(), la, lrun.stride, row_ptrs.data(),
                        raddr.data(), rstride.data(), vals.data(), v,
                        run.stride, fused_n);
            pc.jit += fused_n;
          } else {
            for (i64 k = 0; k < fused_n; ++k) {
              vals[static_cast<std::size_t>(inner)] = v;
              if (rec) {
                // Fused elements are proven local and in bounds for the
                // LHS and every ref; record their resolved offsets.
                rec->note_element(p, la, vals.data());
                for (int r = 0; r < nrefs; ++r)
                  rec->note_local(p, r, raddr[static_cast<std::size_t>(r)]);
              }
              for (int r = 0; r < nrefs; ++r) {
                auto ur = static_cast<std::size_t>(r);
                ref_values[ur] =
                    (*rows[ur])[static_cast<std::size_t>(raddr[ur])];
                raddr[ur] += rruns[ur].stride;
              }
              if (!guard ||
                  guard->holds(ref_values.data(), vals.data(), stack.data()))
                out_row[static_cast<std::size_t>(la)] =
                    rhs.eval(ref_values.data(), vals.data(), stack.data());
              la += lrun.stride;
              v += run.stride;
            }
            pc.fused += fused_n;
          }
          rc.local_reads += fused_n * nrefs;
          for (i64 k = k1 + 1; k < run.count; ++k) {
            vals[static_cast<std::size_t>(inner)] =
                run.start + k * run.stride;
            element(vals);
          }
          pc.generic += run.count - fused_n;
        },
        &es);
    rc.iterations += es.loop_iters;
    rc.tests += es.tests;
  };

  auto phase2 = [&](i64 p) {
    VCAL_TRACE(tr, p, obs::EventKind::ClauseBegin, step_id);
    if (kaff)
      phase2_kernel(p);
    else
      phase2_interp(p);
    VCAL_TRACE(tr, p, obs::EventKind::ClauseEnd, step_id);
  };

  // A stalled rank sits out the scheduled receive/update rounds while
  // every other rank completes; its sends are already in flight, so the
  // step's outcome must be unchanged once the stall releases.
  const FaultPlan* stall = nullptr;
  for (const FaultPlan* f : active_faults)
    if (f->kind == FaultPlan::Kind::StallRank &&
        in_range(f->rank, 0, procs - 1))
      stall = f;
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierBegin, step_id, /*phase=*/2);
  if (stall) {
    VCAL_TRACE(tr, stall->rank, obs::EventKind::Stall, step_id,
               std::max<i64>(stall->rounds, 0));
    for_ranks(procs, [&](i64 p) {
      if (p != stall->rank) phase2(p);
    });
    stall_rounds_ += std::max<i64>(stall->rounds, 0);
    ++faults_applied_;
    phase2(stall->rank);  // the stall releases
  } else {
    for_ranks(procs, phase2);
  }
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierEnd, step_id, /*phase=*/2);

  // Every send must have been consumed — the message-pairing invariant.
  for (i64 p = 0; p < procs; ++p) {
    i64 leftover = 0;
    for (i64 src = 0; src < procs; ++src)
      leftover += channel(src, p).undelivered();
    if (leftover > 0)
      throw RuntimeFault(cat("rank ", p, " finished the clause with ",
                             leftover, " undelivered messages"));
  }
  for (const PathCounters& c : pcs) paths_ += c;
  if (tr)
    for (i64 p = 0; p < procs; ++p) {
      const PathCounters& c = pcs[static_cast<std::size_t>(p)];
      tr->record(p, obs::EventKind::KernelPath, step_id, c.fused, c.generic,
                 c.interp, c.sched);
    }
  if (rec) {
    // Freeze each source rank's pack program from the channel metadata
    // (post-sort, post-dedup order — exactly what replay reproduces),
    // capture the clean step's counters and message-matrix increments,
    // and publish the schedule into the plan-cache entry.
    for (i64 src = 0; src < procs; ++src) {
      spmd::SendPlan& sp = rec->send[static_cast<std::size_t>(src)];
      sp.dst_begin.assign(static_cast<std::size_t>(procs) + 1, 0);
      for (i64 dst = 0; dst < procs; ++dst) {
        sp.dst_begin[static_cast<std::size_t>(dst)] =
            static_cast<i64>(sp.ops.size());
        for (const auto& [ref, off] : channel(src, dst).meta)
          sp.ops.push_back(spmd::PackOp{ref, off});
      }
      sp.dst_begin[static_cast<std::size_t>(procs)] =
          static_cast<i64>(sp.ops.size());
    }
    rec->counters = counters;
    for (i64 s = 0; s < procs; ++s)
      for (i64 d = 0; d < procs; ++d)
        rec->matrix_delta[static_cast<std::size_t>(s * procs + d)] =
            message_matrix_[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(d)] -
            matrix_before[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(d)];
    rec->seal();
    ++comm_.sched_builds;
    plans_->attach_schedule(*key, std::move(rec_owner));
    VCAL_TRACE(tr, ctl, obs::EventKind::SchedBuild, step_id,
               plans_->schedules());
  }
  finish_step(counters);
  VCAL_TRACE(tr, ctl, obs::EventKind::ClauseEnd, step_id);
}

// Executor half of the inspector–executor split. The schedule froze the
// step's communication pattern: each source rank packs values
// positionally into the reused (src, dst) buffers in the exact order the
// tagged pack() produced, and each destination satisfies every operand
// by recorded offset — no tags, no sorting, no hashing, so per-step
// receive cost is O(m) instead of O(m log m). Guards and right-hand
// sides are evaluated live (only the pattern is compiled, never values);
// counters and the message matrix replay verbatim from the recording
// step, keeping every observable statistic bit-identical to the tagged
// path.
void DistMachine::run_clause_scheduled(const Clause& clause,
                                       const ClausePlan& plan,
                                       const spmd::CommSchedule& sched,
                                       spmd::JitState* js,
                                       const spmd::JitFns* jfns) {
  obs::Tracer* tr = tracer_;
  const i64 ctl = tr ? tr->control_lane() : 0;
  const i64 step_id = stats_.steps;
  const i64 procs = sched.procs;
  const int nrefs = sched.nrefs;
  const int nloops = sched.nloops;

  const spmd::ClauseKernel* kern =
      engine_.compiled_kernels ? &plan.kernel() : nullptr;
  const bool kaff = kern != nullptr && kern->affine();

  // Copy-in snapshot when the clause reads its own target: packing and
  // local gathers must observe pre-clause values.
  bool lhs_read = false;
  for (const prog::ArrayRef& r : clause.refs)
    if (r.array == clause.lhs_array) lhs_read = true;
  std::optional<std::vector<std::vector<double>>> snap;
  if (lhs_read) snap = store_.clone(clause.lhs_array);

  // Persistent scratch: sized on the first scheduled step, reused by
  // every later one (the steady state allocates nothing).
  if (static_cast<i64>(sched_counters_.size()) != procs) {
    sched_counters_.assign(static_cast<std::size_t>(procs), RankCounters{});
    sched_pcs_.assign(static_cast<std::size_t>(procs), PathCounters{});
    replay_scratch_.resize(static_cast<std::size_t>(procs));
  }
  for (RankCounters& c : sched_counters_) c = RankCounters{};
  for (PathCounters& c : sched_pcs_) c = PathCounters{};

  // Phase 0: live halo refresh (halo *values* change step to step; the
  // counters it accumulates are deterministic and replay verbatim below,
  // so the scratch tallies are discarded).
  HaloTable halos;
  refresh_halos(clause, plan, snap ? &*snap : nullptr, sched_counters_,
                halos, step_id);

  // Resolve each ref's pre-clause source row (snapshot-aware) and halo
  // cache on `p` into the rank's persistent scratch.
  auto resolve_rows = [&](i64 p, ReplayScratch& rs) {
    rs.rows.resize(static_cast<std::size_t>(nrefs));
    rs.halo_rows.resize(static_cast<std::size_t>(nrefs));
    for (int r = 0; r < nrefs; ++r) {
      const std::string& name =
          clause.refs[static_cast<std::size_t>(r)].array;
      rs.rows[static_cast<std::size_t>(r)] =
          (snap && name == clause.lhs_array)
              ? &(*snap)[static_cast<std::size_t>(p)]
              : &store_.local_row(name, p);
      auto hit = halos.find(name);
      rs.halo_rows[static_cast<std::size_t>(r)] =
          hit == halos.end() ? nullptr
                             : &hit->second[static_cast<std::size_t>(p)];
    }
  };

  // Double-buffered reused channel storage: one contiguous value vector
  // per (src, dst) pair, parity-flipped per scheduled step; clear()
  // keeps capacity.
  std::vector<std::vector<double>>& bufs = comm_bufs_[comm_parity_];
  comm_parity_ ^= 1;
  if (static_cast<i64>(bufs.size()) != procs * procs)
    bufs.resize(static_cast<std::size_t>(procs * procs));

  // ---- Executor phase 1: positional pack -----------------------------
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierBegin, step_id, /*phase=*/1);
  for_ranks_t(procs, [&](i64 p) {
    VCAL_TRACE(tr, p, obs::EventKind::PackBegin, step_id);
    ReplayScratch& rs = replay_scratch_[static_cast<std::size_t>(p)];
    resolve_rows(p, rs);
    const spmd::SendPlan& sp = sched.send[static_cast<std::size_t>(p)];
    i64 packed = 0;
    for (i64 dst = 0; dst < procs; ++dst) {
      std::vector<double>& buf =
          bufs[static_cast<std::size_t>(p * procs + dst)];
      buf.clear();
      const i64 b0 = sp.dst_begin[static_cast<std::size_t>(dst)];
      const i64 b1 = sp.dst_begin[static_cast<std::size_t>(dst) + 1];
      for (i64 i = b0; i < b1; ++i) {
        const spmd::PackOp& op = sp.ops[static_cast<std::size_t>(i)];
        buf.push_back((*rs.rows[static_cast<std::size_t>(op.ref)])
                          [static_cast<std::size_t>(op.offset)]);
      }
      if (b1 > b0)
        VCAL_TRACE(tr, p, obs::EventKind::MsgSend, step_id, dst, b1 - b0);
      packed += b1 - b0;
    }
    VCAL_TRACE(tr, p, obs::EventKind::PackEnd, step_id, packed);
  });
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierEnd, step_id, /*phase=*/1);
  if (tr)
    for (i64 src = 0; src < procs; ++src)
      for (i64 dst = 0; dst < procs; ++dst) {
        const auto& buf = bufs[static_cast<std::size_t>(src * procs + dst)];
        if (!buf.empty())
          tr->record(dst, obs::EventKind::MsgRecv, step_id, src,
                     static_cast<i64>(buf.size()));
      }

  // ---- Executor phase 2: gather by recorded offset, live guard/RHS ---
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierBegin, step_id, /*phase=*/2);
  for_ranks_t(procs, [&](i64 p) {
    VCAL_TRACE(tr, p, obs::EventKind::GatherBegin, step_id);
    ReplayScratch& rs = replay_scratch_[static_cast<std::size_t>(p)];
    const spmd::RecvPlan& rv = sched.recv[static_cast<std::size_t>(p)];
    std::vector<double>& out_row =
        store_.local_row_mut(clause.lhs_array, p);
    rs.refs.resize(static_cast<std::size_t>(nrefs));
    const spmd::CompiledGuard* guard = kaff ? kern->guard() : nullptr;
    if (kaff) rs.stack.resize(static_cast<std::size_t>(kern->stack_need()));

    // Jitted replay: execute the flattened segment program instead of
    // the per-element dispatch — constant-stride runs go through the
    // vectorizable fused entry, irregular stretches through the gather
    // entry. A rank with any == false (halo operand, guarded-OOB slot)
    // keeps the bytecode loop below.
    const spmd::JitRankProg* rp = nullptr;
    if (jfns && js) {
      const spmd::JitReplayProg* jp = js->replay_prog(sched);
      const spmd::JitRankProg& rr = jp->ranks[static_cast<std::size_t>(p)];
      if (rr.any) rp = &rr;
    }
    if (rp) {
      // Operand bases: ref rows first, then the packed buffer arriving
      // from each source rank (matching JitRankProg's id encoding).
      rs.bases.resize(static_cast<std::size_t>(nrefs + procs));
      for (int r = 0; r < nrefs; ++r)
        rs.bases[static_cast<std::size_t>(r)] =
            rs.rows[static_cast<std::size_t>(r)]->data();
      for (i64 s = 0; s < procs; ++s)
        rs.bases[static_cast<std::size_t>(nrefs + s)] =
            bufs[static_cast<std::size_t>(s * procs + p)].data();
      for (const spmd::JitSegment& sg : rp->segs) {
        if (sg.fused)
          jfns->fused(out_row.data(), sg.la0, sg.la_stride, rs.bases.data(),
                      sg.raddr0.data(), sg.rstride.data(),
                      rv.vals.data() + sg.e0 * nloops, sg.v0, sg.vstride,
                      sg.n);
        else
          jfns->replay(out_row.data(), rs.bases.data(),
                       rp->ids.data() + sg.e0 * nrefs,
                       rp->offs.data() + sg.e0 * nrefs,
                       rv.lhs_slot.data() + sg.e0,
                       rv.vals.data() + sg.e0 * nloops, sg.n);
      }
      sched_pcs_[static_cast<std::size_t>(p)].jit += rv.n;
    } else {
      for (i64 e = 0; e < rv.n; ++e) {
        const i64* vals = rv.vals.data() + e * nloops;
        const spmd::RefOp* ops = rv.ops.data() + e * nrefs;
        for (int r = 0; r < nrefs; ++r) {
          const spmd::RefOp& op = ops[r];
          const auto ur = static_cast<std::size_t>(op.ref);
          switch (op.kind) {
            case spmd::RefOp::Kind::Local:
              rs.refs[static_cast<std::size_t>(r)] =
                  (*rs.rows[ur])[static_cast<std::size_t>(op.a)];
              break;
            case spmd::RefOp::Kind::Halo:
              rs.refs[static_cast<std::size_t>(r)] =
                  rs.halo_rows[ur]->find(op.a)->second;
              break;
            case spmd::RefOp::Kind::Remote:
              rs.refs[static_cast<std::size_t>(r)] =
                  bufs[static_cast<std::size_t>(op.a * procs + p)]
                      [static_cast<std::size_t>(op.b)];
              break;
          }
        }
        double value;
        if (kaff) {
          if (guard && !guard->holds(rs.refs.data(), vals, rs.stack.data()))
            continue;
          value = kern->rhs().eval(rs.refs.data(), vals, rs.stack.data());
        } else {
          rs.vals.assign(vals, vals + nloops);
          if (clause.guard && !clause.guard->holds(rs.refs, rs.vals))
            continue;
          value = prog::eval(clause.rhs, rs.refs, rs.vals);
        }
        const i64 slot = rv.lhs_slot[static_cast<std::size_t>(e)];
        if (slot < 0)
          throw RuntimeFault("local write out of bounds on " +
                             clause.lhs_array);
        out_row[static_cast<std::size_t>(slot)] = value;
      }
      sched_pcs_[static_cast<std::size_t>(p)].sched += rv.n;
    }
    VCAL_TRACE(tr, p, obs::EventKind::GatherEnd, step_id, rv.n);
  });
  VCAL_TRACE(tr, ctl, obs::EventKind::BarrierEnd, step_id, /*phase=*/2);

  // Accounting: volumes from the schedule; counters and the message
  // matrix replay verbatim from the recording step (bit-identical
  // stats, last_step_counters, matrix, and sim_time).
  ++comm_.sched_hits;
  comm_.packed_values += sched.packed_ops;
  comm_.packed_bytes += sched.packed_ops * static_cast<i64>(sizeof(double));
  comm_.unpacked_values += sched.remote_ops;
  VCAL_TRACE(tr, ctl, obs::EventKind::SchedHit, step_id);
  for (const PathCounters& c : sched_pcs_) paths_ += c;
  if (tr)
    for (i64 p = 0; p < procs; ++p) {
      const PathCounters& c = sched_pcs_[static_cast<std::size_t>(p)];
      tr->record(p, obs::EventKind::KernelPath, step_id, c.fused, c.generic,
                 c.interp, c.sched);
    }
  for (i64 s = 0; s < procs; ++s)
    for (i64 d = 0; d < procs; ++d)
      message_matrix_[static_cast<std::size_t>(s)]
                     [static_cast<std::size_t>(d)] +=
          sched.matrix_delta[static_cast<std::size_t>(s * procs + d)];
  finish_step(sched.counters);
  VCAL_TRACE(tr, ctl, obs::EventKind::ClauseEnd, step_id);
}

void DistMachine::run_redistribute(const spmd::RedistStep& step) {
  obs::Tracer* tr = tracer_;
  const i64 ctl = tr ? tr->control_lane() : 0;
  const i64 step_id = stats_.steps;
  VCAL_TRACE(tr, ctl, obs::EventKind::RedistBegin, step_id);
  const decomp::ArrayDesc& old_desc = program_.arrays.at(step.array);
  decomp::RedistPlan plan =
      decomp::plan_redistribution(old_desc, step.new_desc);

  // Allocate target buffers, copy stationary elements, apply moves.
  std::vector<std::vector<double>> fresh(
      static_cast<std::size_t>(program_.procs));
  for (i64 p = 0; p < program_.procs; ++p)
    fresh[static_cast<std::size_t>(p)].assign(
        static_cast<std::size_t>(step.new_desc.local_capacity(p)), 0.0);

  std::vector<RankCounters> counters(
      static_cast<std::size_t>(program_.procs));
  std::vector<std::vector<i64>> pair_counts(
      static_cast<std::size_t>(program_.procs),
      std::vector<i64>(static_cast<std::size_t>(program_.procs), 0));
  decomp::for_each_index(old_desc, [&](const std::vector<i64>& idx) {
    i64 src = old_desc.owner(idx);
    i64 dst = step.new_desc.owner(idx);
    double v = store_.read_local(step.array, src,
                                 old_desc.local_linear(idx));
    fresh[static_cast<std::size_t>(dst)][static_cast<std::size_t>(
        step.new_desc.local_linear(idx))] = v;
    ++counters[static_cast<std::size_t>(src)].iterations;
    if (src != dst) {
      ++counters[static_cast<std::size_t>(src)].sends;
      ++counters[static_cast<std::size_t>(dst)].receives;
      ++pair_counts[static_cast<std::size_t>(src)]
                   [static_cast<std::size_t>(dst)];
      ++message_matrix_[static_cast<std::size_t>(src)]
                       [static_cast<std::size_t>(dst)];
    }
  });
  // The mover also aggregates: all elements migrating between one rank
  // pair travel as one bulk message.
  for (i64 src = 0; src < program_.procs; ++src)
    for (i64 dst = 0; dst < program_.procs; ++dst)
      if (pair_counts[static_cast<std::size_t>(src)]
                     [static_cast<std::size_t>(dst)] > 0) {
        ++counters[static_cast<std::size_t>(src)].bulk_sends;
        ++counters[static_cast<std::size_t>(dst)].bulk_receives;
        VCAL_TRACE(tr, src, obs::EventKind::MsgSend, step_id, dst,
                   pair_counts[static_cast<std::size_t>(src)]
                              [static_cast<std::size_t>(dst)]);
        VCAL_TRACE(tr, dst, obs::EventKind::MsgRecv, step_id, src,
                   pair_counts[static_cast<std::size_t>(src)]
                              [static_cast<std::size_t>(dst)]);
      }
  require(static_cast<i64>(plan.moves.size()) ==
              std::accumulate(counters.begin(), counters.end(), i64{0},
                              [](i64 acc, const RankCounters& c) {
                                return acc + c.sends;
                              }),
          "redistribution plan and execution disagree on message count");
  stats_.redist_messages += static_cast<i64>(plan.moves.size());

  store_.replace(step.array, std::move(fresh));
  program_.arrays.insert_or_assign(step.array, step.new_desc);
  // Cached clause plans baked the old layout into their owner
  // arithmetic: invalidate them.
  plans_->bump_epoch();
  VCAL_TRACE(tr, ctl, obs::EventKind::RedistEpoch, step_id,
             static_cast<i64>(plans_->epoch()));
  finish_step(counters);
  VCAL_TRACE(tr, ctl, obs::EventKind::RedistEnd, step_id);
}

std::string DistMachine::message_matrix_str() const {
  std::string out = "messages src\\dst";
  for (i64 d = 0; d < program_.procs; ++d) out += pad_left(cat(d), 8);
  out += "\n";
  for (i64 s = 0; s < program_.procs; ++s) {
    out += pad_left(cat(s), 16);
    for (i64 d = 0; d < program_.procs; ++d)
      out += pad_left(
          cat(message_matrix_[static_cast<std::size_t>(s)]
                             [static_cast<std::size_t>(d)]),
          8);
    out += "\n";
  }
  return out;
}

std::vector<double> DistMachine::gather(const std::string& name) const {
  auto it = program_.arrays.find(name);
  require(it != program_.arrays.end(),
          "DistMachine::gather unknown " + name);
  return store_.gather(it->second);
}

}  // namespace vcal::rt
