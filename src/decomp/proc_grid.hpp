// Cartesian processor grids for multi-dimensional decompositions.
//
// A d-dimensional array distributed dimension-by-dimension lives on a
// d-dimensional grid of processors; the machine sees the linearized
// (row-major) rank. This mirrors the paper's 1-D presentation lifted to
// index sets of d-tuples (its Definition 1 is d-dimensional already).
#pragma once

#include <string>
#include <vector>

#include "support/math.hpp"

namespace vcal::decomp {

class ProcGrid {
 public:
  /// Grid with the given per-dimension extents (each >= 1).
  explicit ProcGrid(std::vector<i64> extents);

  /// 1-D grid of `procs` processors.
  static ProcGrid line(i64 procs);

  /// Near-square 2-D factorization of `procs` (rows >= cols, rows*cols ==
  /// procs, |rows - cols| minimal).
  static ProcGrid square2d(i64 procs);

  /// Balanced k-dimensional factorization of `procs` (the MPI
  /// Dims_create strategy: prime factors, largest first, multiplied into
  /// the currently smallest extent; extents returned non-increasing).
  static ProcGrid balanced(i64 procs, int dims);

  int dims() const noexcept { return static_cast<int>(extents_.size()); }
  i64 extent(int d) const;
  i64 size() const noexcept { return size_; }

  /// Row-major linear rank of grid coordinates.
  i64 rank(const std::vector<i64>& coords) const;

  /// Inverse of rank().
  std::vector<i64> coords(i64 rank) const;

  /// E.g. "4x2".
  std::string str() const;

  bool operator==(const ProcGrid& o) const noexcept {
    return extents_ == o.extents_;
  }

 private:
  std::vector<i64> extents_;
  i64 size_;
};

}  // namespace vcal::decomp
