// vcalc — command-line driver for the V-cal compiler and simulators.
//
//   vcalc [options] program.vexl
//
// Run `vcalc --help` for the full flag reference. Exit status: 0 on
// success, 1 on usage errors, 2 on compile errors, 3 on execution
// faults (including conformance failures).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "emit/c_mpi.hpp"
#include "emit/c_openmp.hpp"
#include "emit/paper_notation.hpp"
#include "lang/translate.hpp"
#include "obs/calibrate.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "proc/proc_machine.hpp"
#include "proc/worker.hpp"
#include "rt/dist_machine.hpp"
#include "rt/seq_executor.hpp"
#include "rt/shared_machine.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace vcal;

struct Options {
  std::string target = "dist";
  std::string emit;
  bool naive = false;
  bool elide_barriers = false;
  bool stats = false;
  bool verify = false;
  bool proc_axis = false;
  bool timeline = false;
  bool calibrate = false;
  int iters = 100;
  std::uint64_t seed = 1;
  rt::EngineOptions engine;
  std::string trace_path;  // --trace FILE: Chrome trace_event JSON out
  std::vector<std::string> init;
  std::vector<std::string> print;
  std::string file;
};

const char kHelp[] =
    "usage: vcalc [options] program.vexl\n"
    "       vcalc --verify [--iters N] [--seed S] [program.vexl]\n"
    "       vcalc --calibrate [program.vexl]\n"
    "\n"
    "execution:\n"
    "  --target=dist|shared|seq|proc\n"
    "                            machine to execute on (default dist);\n"
    "                            proc spawns one real OS process per\n"
    "                            rank, bit-identical to dist\n"
    "  --init NAME               fill NAME with the ramp 0,1,2,... before\n"
    "                            running (repeatable)\n"
    "  --print NAME              dump NAME after the run (repeatable)\n"
    "  --stats                   print machine statistics\n"
    "\n"
    "engine knobs (speed only; results are bit-identical regardless):\n"
    "  --threads N               execution lanes for per-rank loops:\n"
    "                            0 shared pool (default), 1 serial,\n"
    "                            k > 1 a private pool of k lanes\n"
    "  --no-plan-cache           recompute clause plans every execution\n"
    "  --no-comm-schedules       tagged message matching every step\n"
    "                            instead of compiled communication\n"
    "                            schedules (inspector/executor)\n"
    "  --keyed-channels          hash-indexed message matching instead of\n"
    "                            packed binary search (dist target)\n"
    "  --no-compiled-kernels     tree-walking interpreter instead of\n"
    "                            compiled clause kernels\n"
    "  --no-jit                  never swap hot clause plans to natively\n"
    "                            compiled code; keep the bytecode kernels\n"
    "                            (also drops the jit axis from --verify)\n"
    "  --jit-threshold N         clean executions of a cached plan before\n"
    "                            native compilation is armed (default 2)\n"
    "  --jit-cache-dir PATH      content-addressed .so cache directory\n"
    "                            (default $TMPDIR/vcal-jit-cache-<uid>)\n"
    "  --jit-sync                compile armed plans on the calling step\n"
    "                            instead of in the background (gives\n"
    "                            deterministic jit counters; benchmarks\n"
    "                            and tests use it)\n"
    "  --naive                   disable the Table I optimizations\n"
    "                            (run-time resolution baseline)\n"
    "  --elide-barriers          footnote-1 barrier analysis (shared)\n"
    "\n"
    "observability:\n"
    "  --trace FILE              record per-rank events and write Chrome\n"
    "                            trace_event JSON to FILE (load it in\n"
    "                            about://tracing or Perfetto)\n"
    "  --timeline                record events and print a plain-text\n"
    "                            per-rank timeline to stdout\n"
    "  --calibrate               fit cost-model latency/bandwidth\n"
    "                            constants from traced runs of the\n"
    "                            built-in benchmarks (or program.vexl)\n"
    "                            and report per-phase prediction error\n"
    "\n"
    "other modes:\n"
    "  --emit=mpi|omp|trace|ir   print generated source / derivation\n"
    "                            instead of executing\n"
    "  --verify                  differential conformance mode: run the\n"
    "                            seeded random corpus (or the given\n"
    "                            program) through every machine and\n"
    "                            engine configuration, checking\n"
    "                            bit-identical results and statistics\n"
    "                            invariants, plus the fault-injection\n"
    "                            smoke (docs/testing.md)\n"
    "  --iters N                 corpus size for --verify (default 100)\n"
    "  --seed S                  corpus seed for --verify (default 1);\n"
    "                            replay a reported failure with\n"
    "                            --iters 1 --seed <failing seed>\n"
    "  --proc                    add the multi-process backend to the\n"
    "                            --verify engine matrix (spawns real\n"
    "                            worker processes; Linux only)\n"
    "  --rank N --channel-dir D  internal: run as worker rank N of the\n"
    "                            job staged in channel directory D\n"
    "                            (spawned by --target=proc, not by hand)\n"
    "  --help                    this text\n"
    "\n"
    "exit status: 0 success, 1 usage, 2 compile error, 3 execution or\n"
    "conformance failure\n";

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] program.vexl  (--help for the "
                       "flag reference)\n",
               argv0);
  return 1;
}

int run_verify(const Options& opt) {
  using vcal::verify::Oracle;
  if (!opt.file.empty()) {
    std::ifstream in(opt.file);
    if (!in) {
      std::fprintf(stderr, "vcalc: cannot open %s\n", opt.file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      vcal::verify::CheckResult r = Oracle::check_source(
          buf.str(), opt.seed, opt.engine.jit, opt.proc_axis);
      std::printf("verify %s: %s\n", opt.file.c_str(), r.str().c_str());
      return r.ok ? 0 : 3;
    } catch (const Error& e) {
      std::fprintf(stderr, "vcalc: %s\n", e.what());
      return 2;
    }
  }
  vcal::verify::OracleOptions oo;
  oo.iters = opt.iters;
  oo.seed = opt.seed;
  oo.jit_axis = opt.engine.jit;
  oo.proc_axis = opt.proc_axis;
  vcal::verify::OracleReport rep = Oracle::run_corpus(oo);
  std::printf("%s\n", rep.str().c_str());
  vcal::verify::CheckResult faults = Oracle::check_faults();
  std::printf("verify faults: %s\n", faults.str().c_str());
  return rep.ok && faults.ok ? 0 : 3;
}

int run_calibrate(const Options& opt) {
  std::vector<std::pair<std::string, spmd::Program>> benches;
  try {
    if (!opt.file.empty()) {
      std::ifstream in(opt.file);
      if (!in) {
        std::fprintf(stderr, "vcalc: cannot open %s\n", opt.file.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      benches.emplace_back(opt.file, lang::compile(buf.str()));
    } else {
      benches = obs::builtin_calibration_benches();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "vcalc: %s\n", e.what());
    return 2;
  }
  try {
    obs::CalibrationReport rep = obs::calibrate(benches);
    std::fputs(rep.str().c_str(), stdout);
  } catch (const Error& e) {
    std::fprintf(stderr, "vcalc: %s\n", e.what());
    return 3;
  }
  return 0;
}

std::vector<double> ramp(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>(i);
  return v;
}

void dump(const std::string& name, const std::vector<double>& data) {
  std::printf("%s =", name.c_str());
  for (double v : data) std::printf(" %g", v);
  std::printf("\n");
}

/// Writes/prints the requested exports once the run finished. Returns
/// false (after a diagnostic) when the trace file cannot be written.
bool emit_trace(const Options& opt, const obs::Tracer* tracer) {
  if (tracer == nullptr) return true;
  if (!opt.trace_path.empty()) {
    std::ofstream out(opt.trace_path);
    if (!out) {
      std::fprintf(stderr, "vcalc: cannot write %s\n",
                   opt.trace_path.c_str());
      return false;
    }
    out << obs::chrome_trace_json(*tracer, opt.file);
  }
  if (opt.timeline) std::fputs(obs::timeline_text(*tracer).c_str(), stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode: `vcalc --rank N --channel-dir PATH` (spawned by the
  // proc launcher) never touches the normal option surface.
  if (argc >= 2 && std::strcmp(argv[1], "--rank") == 0) {
    if (argc != 5 || std::strcmp(argv[3], "--channel-dir") != 0)
      return usage(argv[0]);
    return vcal::proc::worker_main(std::atoll(argv[2]), argv[4]);
  }
  Options opt;
  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kHelp, stdout);
      return 0;
    } else if (arg.rfind("--target=", 0) == 0) {
      opt.target = value("--target=");
    } else if (arg.rfind("--emit=", 0) == 0) {
      opt.emit = value("--emit=");
    } else if (arg == "--naive") {
      opt.naive = true;
    } else if (arg == "--elide-barriers") {
      opt.elide_barriers = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--proc") {
      opt.proc_axis = true;
    } else if (arg == "--calibrate") {
      opt.calibrate = true;
    } else if (arg == "--timeline") {
      opt.timeline = true;
      opt.engine.trace = true;
    } else if (arg == "--trace" && k + 1 < argc) {
      opt.trace_path = argv[++k];
      opt.engine.trace = true;
    } else if (arg == "--threads" && k + 1 < argc) {
      opt.engine.threads = std::atoi(argv[++k]);
      if (opt.engine.threads < 0) return usage(argv[0]);
    } else if (arg == "--no-plan-cache") {
      opt.engine.cache_plans = false;
    } else if (arg == "--no-comm-schedules") {
      opt.engine.comm_schedules = false;
    } else if (arg == "--keyed-channels") {
      opt.engine.keyed_channels = true;
    } else if (arg == "--no-compiled-kernels") {
      opt.engine.compiled_kernels = false;
    } else if (arg == "--no-jit") {
      opt.engine.jit = false;
    } else if (arg == "--jit-threshold" && k + 1 < argc) {
      opt.engine.jit_threshold = std::atoi(argv[++k]);
      if (opt.engine.jit_threshold < 1) return usage(argv[0]);
    } else if (arg == "--jit-cache-dir" && k + 1 < argc) {
      opt.engine.jit_cache_dir = argv[++k];
    } else if (arg == "--jit-sync") {
      opt.engine.jit_sync = true;
    } else if (arg == "--iters" && k + 1 < argc) {
      opt.iters = std::atoi(argv[++k]);
      if (opt.iters <= 0) return usage(argv[0]);
    } else if (arg == "--seed" && k + 1 < argc) {
      opt.seed = std::strtoull(argv[++k], nullptr, 10);
    } else if (arg == "--init" && k + 1 < argc) {
      opt.init.push_back(argv[++k]);
    } else if (arg == "--print" && k + 1 < argc) {
      opt.print.push_back(argv[++k]);
    } else if (arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else if (opt.file.empty()) {
      opt.file = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.verify) return run_verify(opt);
  if (opt.calibrate) return run_calibrate(opt);
  if (opt.file.empty()) return usage(argv[0]);

  std::ifstream in(opt.file);
  if (!in) {
    std::fprintf(stderr, "vcalc: cannot open %s\n", opt.file.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  spmd::Program program;
  try {
    program = lang::compile(buf.str());
  } catch (const Error& e) {
    std::fprintf(stderr, "vcalc: %s\n", e.what());
    return 2;
  }

  if (!opt.emit.empty()) {
    try {
      if (opt.emit == "mpi") {
        std::fputs(emit::emit_mpi_c(program).c_str(), stdout);
      } else if (opt.emit == "omp") {
        std::fputs(emit::emit_openmp_c(program).c_str(), stdout);
      } else if (opt.emit == "ir") {
        std::fputs(program.str().c_str(), stdout);
      } else if (opt.emit == "trace") {
        spmd::ArrayTable arrays = program.arrays;
        for (const spmd::Step& step : program.steps) {
          if (const auto* clause = std::get_if<prog::Clause>(&step)) {
            std::fputs(
                emit::trace_pipeline(*clause, arrays).str().c_str(),
                stdout);
            std::fputs("\n", stdout);
          } else {
            const auto& r = std::get<spmd::RedistStep>(step);
            std::printf("redistribute -> %s\n\n",
                        r.new_desc.str().c_str());
            arrays.insert_or_assign(r.array, r.new_desc);
          }
        }
      } else {
        return usage(argv[0]);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "vcalc: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  gen::BuildOptions build;
  build.force_runtime_resolution = opt.naive;

  try {
    auto init_all = [&](auto& machine) {
      for (const std::string& name : opt.init) {
        auto it = program.arrays.find(name);
        if (it == program.arrays.end())
          throw SemanticError("--init names unknown array " + name);
        machine.load(name, ramp(it->second.total()));
      }
    };
    if (opt.target == "seq") {
      rt::SeqExecutor machine(program, opt.engine.compiled_kernels);
      // The sequential executor doesn't own a tracer (it has no
      // EngineOptions); attach one here so --trace/--timeline still work.
      std::unique_ptr<obs::Tracer> tracer;
      if (opt.engine.trace) {
        tracer = std::make_unique<obs::Tracer>(/*ranks=*/1,
                                               opt.engine.trace_capacity);
        machine.attach_tracer(tracer.get());
      }
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.result(name));
      if (!emit_trace(opt, tracer.get())) return 1;
    } else if (opt.target == "shared") {
      rt::SharedMachine machine(program, build, {}, opt.elide_barriers,
                                opt.engine);
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.result(name));
      if (opt.stats) {
        std::printf("stats: %s\n", machine.stats().str().c_str());
        std::printf("paths: %s\n", machine.path_counters().str().c_str());
        std::printf("comm: %s\n", machine.comm_stats().str().c_str());
        std::printf("jit: %s\n", machine.jit_stats().str().c_str());
      }
      if (!emit_trace(opt, machine.tracer())) return 1;
    } else if (opt.target == "dist") {
      rt::DistMachine machine(program, build, {}, opt.engine);
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.gather(name));
      if (opt.stats) {
        std::printf("stats: %s\n", machine.stats().str().c_str());
        std::printf("paths: %s\n", machine.path_counters().str().c_str());
        std::printf("comm: %s\n", machine.comm_stats().str().c_str());
        std::printf("jit: %s\n", machine.jit_stats().str().c_str());
      }
      if (!emit_trace(opt, machine.tracer())) return 1;
    } else if (opt.target == "proc") {
      proc::ProcMachine machine(buf.str(), build, {}, opt.engine);
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.gather(name));
      if (opt.stats)
        std::printf("stats: %s\n", machine.stats().str().c_str());
      if (!opt.trace_path.empty()) {
        std::vector<obs::TraceLane> lanes;
        for (std::size_t r = 0; r < machine.rank_traces().size(); ++r)
          lanes.push_back({cat("rank ", r), machine.rank_traces()[r].events,
                           machine.rank_traces()[r].dropped});
        std::ofstream out(opt.trace_path);
        if (!out) {
          std::fprintf(stderr, "vcalc: cannot write %s\n",
                       opt.trace_path.c_str());
          return 1;
        }
        out << obs::chrome_trace_json(lanes, opt.file);
      }
    } else {
      return usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "vcalc: %s\n", e.what());
    return 3;
  }
  return 0;
}
