// Dynamic decompositions: redistributing an array mid-program.
//
// The paper's introduction criticizes systems where redistribution must
// be hand-written and "intermingled with the program code". Here the
// algorithm has two phases with opposite locality preferences:
//
//   phase 1: neighbour smoothing       (block-friendly)
//   phase 2: strided sampling A[4*i]   (scatter balances the strided
//                                       writes across processors)
//
// A single `redistribute` statement between the phases switches the
// layout; the mover is generated from the two proc()/local() maps.
#include <cstdio>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/seq_executor.hpp"
#include "support/format.hpp"

int main() {
  using namespace vcal;

  auto program_text = [](bool redistribute) {
    std::string src = R"(
      processors 8;
      array U[0:2047];
      array S[0:2047];
      distribute U block;
      distribute S scatter;
      forall i in 1:2046 do U[i] := (U[i-1] + U[i+1])/2; od
    )";
    if (redistribute) src += "\nredistribute U scatter;\n";
    src += R"(
      forall i in 0:511 do S[4*i] := U[4*i]*2; od
    )";
    return src;
  };

  std::vector<double> u(2048);
  for (i64 i = 0; i < 2048; ++i)
    u[static_cast<std::size_t>(i)] = static_cast<double>((i * 7) % 31);

  std::printf("=== dynamic redistribution between program phases ===\n\n");
  std::printf("%-28s %12s %12s %14s\n", "configuration", "messages",
              "tests", "sim-time");

  std::vector<double> reference;
  for (bool redist : {false, true}) {
    spmd::Program p = lang::compile(program_text(redist));
    rt::DistMachine m(p);
    m.load("U", u);
    m.run();
    if (reference.empty()) {
      rt::SeqExecutor seq(lang::compile(program_text(false)));
      seq.load("U", u);
      seq.run();
      reference = seq.result("S");
    }
    bool ok = m.gather("S") == reference;
    std::printf("%-28s %12s %12s %14s %s\n",
                redist ? "with redistribute U scatter"
                       : "static block layout",
                with_commas(m.stats().messages).c_str(),
                with_commas(m.stats().tests).c_str(),
                with_commas((i64)m.stats().sim_time).c_str(),
                ok ? "" : " !! MISMATCH");
  }

  std::printf(
      "\nThe redistribution costs one burst of messages but aligns phase "
      "2's strided\naccesses with their owners; results are identical — "
      "the decomposition is not\npart of the algorithm.\n");
  return 0;
}
