#include "serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "proc/wire.hpp"
#include "support/error.hpp"

namespace vcal::serve {
namespace {

// A frame payload larger than this is garbage (or an attack), not a
// request: the largest legitimate payloads are dense array images, and
// even those stay far below this. Rejecting early keeps one bad client
// from making the server allocate unbounded memory.
constexpr std::uint32_t kMaxPayload = 1u << 28;  // 256 MiB

bool write_all(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    p += k;
    n -= static_cast<size_t>(k);
  }
  return true;
}

/// Returns bytes read; a short count means EOF mid-read, 0 clean EOF.
size_t read_all(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t k = ::read(fd, p + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (k == 0) break;
    got += static_cast<size_t>(k);
  }
  return got;
}

void put_engine(proc::WireWriter& w, const rt::EngineOptions& e) {
  w.put_i64(e.threads);
  w.put_u8(e.cache_plans ? 1 : 0);
  w.put_u8(e.keyed_channels ? 1 : 0);
  w.put_u8(e.compiled_kernels ? 1 : 0);
  w.put_u8(e.comm_schedules ? 1 : 0);
  w.put_u8(e.trace ? 1 : 0);
  w.put_i64(e.trace_capacity);
  w.put_u8(e.jit ? 1 : 0);
  w.put_i64(e.jit_threshold);
  w.put_u8(e.jit_sync ? 1 : 0);
  w.put_str(e.jit_cache_dir);
}

rt::EngineOptions get_engine(proc::WireReader& r) {
  rt::EngineOptions e;
  e.threads = static_cast<int>(r.get_i64());
  e.cache_plans = r.get_u8() != 0;
  e.keyed_channels = r.get_u8() != 0;
  e.compiled_kernels = r.get_u8() != 0;
  e.comm_schedules = r.get_u8() != 0;
  e.trace = r.get_u8() != 0;
  e.trace_capacity = r.get_i64();
  e.jit = r.get_u8() != 0;
  e.jit_threshold = static_cast<int>(r.get_i64());
  e.jit_sync = r.get_u8() != 0;
  e.jit_cache_dir = r.get_str();
  return e;
}

void put_build(proc::WireWriter& w, const gen::BuildOptions& b) {
  w.put_u8(static_cast<std::uint8_t>(b.bs_form));
  w.put_u8(b.allow_enumerate_k ? 1 : 0);
  w.put_u8(b.force_runtime_resolution ? 1 : 0);
  w.put_i64(b.max_pieces);
}

gen::BuildOptions get_build(proc::WireReader& r) {
  gen::BuildOptions b;
  b.bs_form = static_cast<gen::BuildOptions::BsForm>(r.get_u8());
  b.allow_enumerate_k = r.get_u8() != 0;
  b.force_runtime_resolution = r.get_u8() != 0;
  b.max_pieces = r.get_i64();
  return b;
}

void finish(const proc::WireReader& r) {
  require(r.done(), "serve: trailing bytes in payload");
}

}  // namespace

const char* msg_name(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::Welcome: return "Welcome";
    case MsgType::Run: return "Run";
    case MsgType::Result: return "Result";
    case MsgType::GetMetrics: return "GetMetrics";
    case MsgType::Metrics: return "Metrics";
    case MsgType::Shutdown: return "Shutdown";
    case MsgType::Bye: return "Bye";
  }
  return "?";
}

void send_frame(int fd, MsgType type,
                const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload)
    throw RuntimeFault("serve: frame payload too large");
  std::uint32_t hdr[2] = {static_cast<std::uint32_t>(type),
                          static_cast<std::uint32_t>(payload.size())};
  std::vector<std::uint8_t> buf(sizeof hdr + payload.size());
  std::memcpy(buf.data(), hdr, sizeof hdr);
  if (!payload.empty())
    std::memcpy(buf.data() + sizeof hdr, payload.data(), payload.size());
  if (!write_all(fd, buf.data(), buf.size()))
    throw RuntimeFault("serve: peer closed while sending " +
                       std::string(msg_name(type)));
}

bool recv_frame(int fd, Frame* out) {
  std::uint32_t hdr[2];
  size_t got = read_all(fd, hdr, sizeof hdr);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got != sizeof hdr) throw RuntimeFault("serve: truncated frame header");
  if (hdr[1] > kMaxPayload)
    throw RuntimeFault("serve: oversized frame rejected");
  out->type = static_cast<MsgType>(hdr[0]);
  out->payload.resize(hdr[1]);
  if (hdr[1] != 0 && read_all(fd, out->payload.data(), hdr[1]) != hdr[1])
    throw RuntimeFault("serve: truncated frame payload");
  return true;
}

std::vector<std::uint8_t> encode_hello(std::uint32_t version) {
  proc::WireWriter w;
  w.put_u32(version);
  return std::move(w.bytes);
}

std::uint32_t decode_hello(const std::vector<std::uint8_t>& payload) {
  proc::WireReader r(payload.data(), payload.size());
  std::uint32_t v = r.get_u32();
  finish(r);
  return v;
}

std::vector<std::uint8_t> encode_welcome(std::uint32_t version,
                                         i64 session_id) {
  proc::WireWriter w;
  w.put_u32(version);
  w.put_i64(session_id);
  return std::move(w.bytes);
}

void decode_welcome(const std::vector<std::uint8_t>& payload,
                    std::uint32_t* version, i64* session_id) {
  proc::WireReader r(payload.data(), payload.size());
  *version = r.get_u32();
  *session_id = r.get_i64();
  finish(r);
}

std::vector<std::uint8_t> encode_build_options(const gen::BuildOptions& b) {
  proc::WireWriter w;
  put_build(w, b);
  return std::move(w.bytes);
}

gen::BuildOptions decode_build_options(const std::vector<std::uint8_t>& b) {
  proc::WireReader r(b.data(), b.size());
  gen::BuildOptions out = get_build(r);
  finish(r);
  return out;
}

std::vector<std::uint8_t> encode_run(const RunRequest& req) {
  proc::WireWriter w;
  w.put_i64(req.request_id);
  w.put_str(req.source);
  w.put_u8(static_cast<std::uint8_t>(req.target));
  put_build(w, req.build);
  put_engine(w, req.engine);
  w.put_u8(req.elide_barriers ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(req.inputs.size()));
  for (const RunRequest::Input& in : req.inputs) {
    w.put_str(in.name);
    w.put_u8(in.ramp ? 1 : 0);
    if (!in.ramp) w.put_f64s(in.values);
  }
  w.put_u32(static_cast<std::uint32_t>(req.gather.size()));
  for (const std::string& g : req.gather) w.put_str(g);
  w.put_u8(req.want_stats ? 1 : 0);
  return std::move(w.bytes);
}

RunRequest decode_run(const std::vector<std::uint8_t>& payload) {
  proc::WireReader r(payload.data(), payload.size());
  RunRequest req;
  req.request_id = r.get_i64();
  req.source = r.get_str();
  req.target = static_cast<Target>(r.get_u8());
  req.build = get_build(r);
  req.engine = get_engine(r);
  req.elide_barriers = r.get_u8() != 0;
  std::uint32_t n = r.get_u32();
  req.inputs.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    req.inputs[i].name = r.get_str();
    req.inputs[i].ramp = r.get_u8() != 0;
    if (!req.inputs[i].ramp) req.inputs[i].values = r.get_f64s();
  }
  std::uint32_t g = r.get_u32();
  req.gather.resize(g);
  for (std::uint32_t i = 0; i < g; ++i) req.gather[i] = r.get_str();
  req.want_stats = r.get_u8() != 0;
  finish(r);
  return req;
}

std::vector<std::uint8_t> encode_result(const RunResult& res) {
  proc::WireWriter w;
  w.put_i64(res.request_id);
  w.put_u8(static_cast<std::uint8_t>(res.status));
  w.put_u8(static_cast<std::uint8_t>(res.error_kind));
  w.put_str(res.error);
  w.put_u8(res.cache_hit ? 1 : 0);
  w.put_u8(res.coalesced ? 1 : 0);
  w.put_f64(res.compile_ms);
  w.put_i64(res.plan_hits);
  w.put_i64(res.plan_misses);
  w.put_u32(static_cast<std::uint32_t>(res.stores.size()));
  for (const auto& [name, vals] : res.stores) {
    w.put_str(name);
    w.put_f64s(vals);
  }
  w.put_str(res.stats_line);
  return std::move(w.bytes);
}

RunResult decode_result(const std::vector<std::uint8_t>& payload) {
  proc::WireReader r(payload.data(), payload.size());
  RunResult res;
  res.request_id = r.get_i64();
  res.status = static_cast<Status>(r.get_u8());
  res.error_kind = static_cast<ErrKind>(r.get_u8());
  res.error = r.get_str();
  res.cache_hit = r.get_u8() != 0;
  res.coalesced = r.get_u8() != 0;
  res.compile_ms = r.get_f64();
  res.plan_hits = r.get_i64();
  res.plan_misses = r.get_i64();
  std::uint32_t n = r.get_u32();
  res.stores.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    res.stores[i].first = r.get_str();
    res.stores[i].second = r.get_f64s();
  }
  res.stats_line = r.get_str();
  finish(r);
  return res;
}

std::vector<std::uint8_t> encode_metrics(const std::string& server_json,
                                         const std::string& session_json) {
  proc::WireWriter w;
  w.put_str(server_json);
  w.put_str(session_json);
  return std::move(w.bytes);
}

void decode_metrics(const std::vector<std::uint8_t>& payload,
                    std::string* server_json, std::string* session_json) {
  proc::WireReader r(payload.data(), payload.size());
  *server_json = r.get_str();
  *session_json = r.get_str();
  finish(r);
}

}  // namespace vcal::serve
