#include "spmd/program.hpp"

#include "support/error.hpp"
#include "support/format.hpp"

namespace vcal::spmd {

void Program::validate() const {
  for (const auto& [name, desc] : arrays) {
    if (desc.procs() != procs)
      throw SemanticError(cat("array ", name, " declared on ", desc.procs(),
                              " processors; program uses ", procs));
  }
  auto check_array = [&](const std::string& name) {
    if (arrays.find(name) == arrays.end())
      throw SemanticError("array " + name + " is not declared");
  };
  std::map<std::string, bool> replicated;
  for (const auto& [name, desc] : arrays)
    replicated[name] = desc.is_replicated();
  for (const Step& step : steps) {
    if (const auto* clause = std::get_if<prog::Clause>(&step)) {
      clause->validate();
      check_array(clause->lhs_array);
      for (const prog::ArrayRef& r : clause->refs) check_array(r.array);
    } else {
      const auto& redist = std::get<RedistStep>(step);
      check_array(redist.array);
      const decomp::ArrayDesc& old_desc = arrays.at(redist.array);
      if (redist.new_desc.ndims() != old_desc.ndims())
        throw SemanticError("redistribution changes dimensionality of " +
                            redist.array);
      for (int d = 0; d < old_desc.ndims(); ++d)
        if (redist.new_desc.lo(d) != old_desc.lo(d) ||
            redist.new_desc.hi(d) != old_desc.hi(d))
          throw SemanticError("redistribution changes bounds of " +
                              redist.array);
      if (redist.new_desc.procs() != procs)
        throw SemanticError("redistribution of " + redist.array +
                            " targets a different processor count");
      if (replicated.at(redist.array) || redist.new_desc.is_replicated())
        throw SemanticError(
            "redistribution of " + redist.array +
            " involves a replicated layout, which has no single owner");
    }
  }
}

i64 Program::clause_count() const {
  i64 c = 0;
  for (const Step& step : steps)
    if (std::holds_alternative<prog::Clause>(step)) ++c;
  return c;
}

std::string Program::str() const {
  std::string out = cat("program on ", procs, " processors\n");
  for (const auto& [name, desc] : arrays) out += "  " + desc.str() + "\n";
  for (const Step& step : steps) {
    if (const auto* clause = std::get_if<prog::Clause>(&step))
      out += "  " + clause->str() + "\n";
    else
      out += "  redistribute " +
             std::get<RedistStep>(step).new_desc.str() + "\n";
  }
  return out;
}

}  // namespace vcal::spmd
