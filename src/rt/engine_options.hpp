// Tuning knobs of the fast-path execution engine shared by the runtime
// substrates (DistMachine, SharedMachine).
//
// None of these change observable semantics: results, DistStats
// counters, per-rank counters, and message matrices are bit-identical
// for every setting (the determinism tests in rt_test.cpp pin this).
// They exist so benchmarks can isolate each mechanism's contribution and
// so tests can force the serial path.
#pragma once

namespace vcal::rt {

struct EngineOptions {
  /// Total execution lanes for the per-rank phase loops. 0 uses the
  /// process-wide shared pool (sized to the hardware); 1 runs every
  /// rank loop inline on the caller; k > 1 gives the machine its own
  /// pool of k lanes.
  int threads = 0;

  /// Reuse clause plans across repeated executions of the same clause
  /// (invalidated when a redistribution changes a decomposition).
  bool cache_plans = true;

  /// Match in-flight messages with a per-channel hash index keyed on the
  /// message tag instead of the packed sorted-vector + binary-search
  /// representation (distributed target only). Counters and results are
  /// identical either way; the conformance oracle runs both to pin the
  /// two matching paths against each other.
  bool keyed_channels = false;
};

}  // namespace vcal::rt
