// Array storage for the runtime substrates.
//
// DenseStore backs the sequential reference executor and the shared-memory
// machine: one row-major buffer per array. DistStore backs the simulated
// distributed-memory machine: one local buffer per (array, rank), sized by
// the decomposition's local capacity; replicated arrays get a full copy on
// every rank.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "decomp/array_desc.hpp"

namespace vcal::rt {

class DenseStore {
 public:
  /// Allocates a zero-filled buffer for the array.
  void declare(const decomp::ArrayDesc& desc);

  /// Replaces the buffer contents with `dense` (row-major, full size).
  void load(const decomp::ArrayDesc& desc, const std::vector<double>& dense);

  double read(const decomp::ArrayDesc& desc,
              const std::vector<i64>& idx) const;
  void write(const decomp::ArrayDesc& desc, const std::vector<i64>& idx,
             double value);

  const std::vector<double>& dense(const std::string& name) const;
  std::vector<double> snapshot(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Raw buffer access for the shared-memory machine's worker threads
  /// (ownership partitioning guarantees disjoint writes).
  std::vector<double>& buffer(const std::string& name);

 private:
  std::map<std::string, std::vector<double>> buffers_;
};

class DistStore {
 public:
  explicit DistStore(i64 procs);

  i64 procs() const noexcept { return procs_; }

  /// Allocates zero-filled local buffers on every rank.
  void declare(const decomp::ArrayDesc& desc);

  /// Scatters a dense row-major image across the local buffers
  /// (replicated arrays: every rank receives the full image).
  void load(const decomp::ArrayDesc& desc, const std::vector<double>& dense);

  /// Reassembles the dense image from the local buffers (replicated
  /// arrays: rank 0's copy).
  std::vector<double> gather(const decomp::ArrayDesc& desc) const;

  double read_local(const std::string& name, i64 rank, i64 local) const;
  void write_local(const std::string& name, i64 rank, i64 local,
                   double value);

  /// Direct access to one rank's local buffer, for executor inner loops
  /// that hoist the name lookup out of per-element code. Writers rely on
  /// ownership partitioning for disjointness, exactly as with
  /// write_local.
  const std::vector<double>& local_row(const std::string& name,
                                       i64 rank) const {
    return local(name, rank);
  }
  std::vector<double>& local_row_mut(const std::string& name, i64 rank);

  /// Copies all local buffers of the array (clause copy-in snapshots).
  std::vector<std::vector<double>> clone(const std::string& name) const;

  /// Swaps in new local buffers (redistribution).
  void replace(const std::string& name,
               std::vector<std::vector<double>> buffers);

 private:
  const std::vector<double>& local(const std::string& name, i64 rank) const;

  i64 procs_;
  std::map<std::string, std::vector<std::vector<double>>> buffers_;
};

}  // namespace vcal::rt
