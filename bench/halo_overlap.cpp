// Section 5 extension: overlapped (halo) decompositions.
//
// The same relaxation kernel runs with plain block decomposition and with
// block overlap(h). Without overlap every boundary neighbour read is one
// per-element message; with overlap each processor refreshes its halo in
// one bulk exchange per neighbour per clause, and all neighbour reads
// become local. The cost model (latency per message + per value) shows
// why the 1991-era machines the paper targets care: latency dominates.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/seq_executor.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;

std::string kernel(i64 procs, i64 n, int sweeps, const char* dist_u,
                   int radius = 1) {
  std::string src = cat("processors ", procs, ";\narray U[0:", n - 1,
                        "];\narray V[0:", n - 1, "];\ndistribute U ",
                        dist_u, ";\ndistribute V ", dist_u, ";\n");
  auto stencil = [&](const char* dst, const char* a) {
    std::string body = cat(dst, "[i] := (");
    for (int k = -radius; k <= radius; ++k) {
      if (k != -radius) body += " + ";
      body += cat(a, "[i", k < 0 ? " - " : " + ", k < 0 ? -k : k, "]");
    }
    body += cat(")/", 2 * radius + 1, ";");
    return cat("forall i in ", radius, ":", n - 1 - radius, " do ", body,
               " od\n");
  };
  for (int s = 0; s < sweeps; ++s) {
    src += stencil("V", "U");
    src += stencil("U", "V");
  }
  return src;
}

std::vector<double> input(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n), 0.0);
  v[static_cast<std::size_t>(n / 3)] = 900.0;
  return v;
}

void table(int radius) {
  const i64 n = 2048;
  const int sweeps = 4;
  std::string overlap_dist = cat("block overlap(", radius, ")");
  std::printf(
      "\n--- %d-point stencil, n=%lld, %d sweeps: plain block vs "
      "overlap(%d) ---\n",
      2 * radius + 1, (long long)n, sweeps, radius);
  std::printf("%6s %-22s %12s %12s %12s %12s %14s\n", "P", "distribution",
              "messages", "halo-msgs", "halo-vals", "halo-reads",
              "sim-time");
  for (i64 procs : {2, 4, 8, 16}) {
    std::vector<double> reference;
    for (const std::string& dist :
         {std::string("block"), overlap_dist}) {
      spmd::Program p =
          lang::compile(kernel(procs, n, sweeps, dist.c_str(), radius));
      rt::DistMachine m(p);
      m.load("U", input(n));
      m.run();
      if (reference.empty()) {
        rt::SeqExecutor seq(
            lang::compile(kernel(procs, n, sweeps, "block", radius)));
        seq.load("U", input(n));
        seq.run();
        reference = seq.result("U");
      }
      if (m.gather("U") != reference) std::printf("  !! MISMATCH\n");
      std::printf("%6lld %-22s %12s %12s %12s %12s %14s\n",
                  (long long)procs, dist.c_str(),
                  with_commas(m.stats().messages).c_str(),
                  with_commas(m.stats().halo_messages).c_str(),
                  with_commas(m.stats().halo_values).c_str(),
                  with_commas(m.stats().halo_reads).c_str(),
                  with_commas((i64)m.stats().sim_time).c_str());
    }
  }
}

void BM_RelaxationNoHalo(benchmark::State& state) {
  spmd::Program p =
      lang::compile(kernel(state.range(0), 2048, 2, "block"));
  std::vector<double> u = input(2048);
  for (auto _ : state) {
    rt::DistMachine m(p);
    m.load("U", u);
    m.run();
    benchmark::DoNotOptimize(m.stats().messages);
  }
}
BENCHMARK(BM_RelaxationNoHalo)->Arg(8);

void BM_RelaxationHalo(benchmark::State& state) {
  spmd::Program p = lang::compile(
      kernel(state.range(0), 2048, 2, "block overlap(1)"));
  std::vector<double> u = input(2048);
  for (auto _ : state) {
    rt::DistMachine m(p);
    m.load("U", u);
    m.run();
    benchmark::DoNotOptimize(m.stats().halo_messages);
  }
}
BENCHMARK(BM_RelaxationHalo)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Section 5 extension: overlapped decompositions ===\n");
  table(1);
  table(4);
  std::printf(
      "\nExpected shape: without overlap every boundary neighbour read is "
      "one message\n(2*radius per interior boundary per clause); with "
      "overlap each boundary costs one\nbulk exchange of `radius` values, "
      "so the message count divides by the stencil\nradius and the "
      "latency term of the makespan shrinks accordingly (visible in the\n"
      "9-point table). Results are bit-identical in every cell.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
