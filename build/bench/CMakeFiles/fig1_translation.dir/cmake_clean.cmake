file(REMOVE_RECURSE
  "CMakeFiles/fig1_translation.dir/fig1_translation.cpp.o"
  "CMakeFiles/fig1_translation.dir/fig1_translation.cpp.o.d"
  "fig1_translation"
  "fig1_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
