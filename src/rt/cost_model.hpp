// Linear cost model for the simulated machines.
//
// The paper reports no absolute timings (its machines are 1991 hardware);
// what transfers is the *count structure*: membership tests, loop
// iterations, and messages. The simulator charges each a configurable
// price and reports the SPMD makespan (the slowest processor per step,
// summed over steps), so benchmark shapes — who wins, where crossovers
// fall — are reproducible deterministically on any host.
#pragma once

#include <string>

#include "support/math.hpp"

namespace vcal::rt {

struct CostModel {
  double per_message = 50.0;  // fixed latency charged to sender & receiver
  double per_value = 1.0;     // marginal transfer cost per element
  double per_iteration = 1.0; // loop-body execution
  double per_test = 0.5;      // run-time membership test / probe
  double per_barrier = 200.0; // global barrier synchronization (shared)

  double message_cost(i64 messages) const {
    return static_cast<double>(messages) * (per_message + per_value);
  }
  double compute_cost(i64 iterations, i64 tests) const {
    return static_cast<double>(iterations) * per_iteration +
           static_cast<double>(tests) * per_test;
  }
};

/// Per-rank accounting for one step; the step's makespan is the maximum
/// rank_time over ranks.
struct RankCounters {
  i64 sends = 0;
  i64 receives = 0;
  i64 iterations = 0;  // loop-body entries (including overhead iterations)
  i64 tests = 0;       // membership tests / probes
  i64 local_reads = 0;
  i64 remote_reads = 0;
  // Halo exchange (overlapped decompositions): bulk transfers combine a
  // whole boundary region into one message; elements ride at per-value
  // cost.
  i64 halo_bulk = 0;    // bulk halo messages sent or received
  i64 halo_values = 0;  // elements carried by those messages
  i64 halo_reads = 0;   // remote reads satisfied from the local halo

  double time(const CostModel& cm) const {
    return cm.message_cost(sends + receives) +
           cm.compute_cost(iterations, tests) +
           static_cast<double>(halo_bulk) * cm.per_message +
           static_cast<double>(halo_values) * cm.per_value;
  }
};

}  // namespace vcal::rt
