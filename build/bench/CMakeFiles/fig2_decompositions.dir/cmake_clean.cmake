file(REMOVE_RECURSE
  "CMakeFiles/fig2_decompositions.dir/fig2_decompositions.cpp.o"
  "CMakeFiles/fig2_decompositions.dir/fig2_decompositions.cpp.o.d"
  "fig2_decompositions"
  "fig2_decompositions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_decompositions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
