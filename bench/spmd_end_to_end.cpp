// Sections 2.9-2.10 reproduction: the full generated SPMD programs on
// both machine classes, run-time resolution vs compile-time optimized.
//
// Two kernels from the paper's motivating domain:
//   relaxation  V[i] := (U[i-1] + U[i+1]) / 2    (aligned neighbours)
//   gather      A[i] := B[3*i + 1]               (strided remote access)
// under every decomposition pairing, sweeping the processor count.
// Reported: membership tests, messages, and the cost-model makespan —
// the quantities whose shape the paper's argument predicts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/shared_machine.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;

std::string kernel(const char* da, const char* db, i64 procs, i64 n,
                   bool strided) {
  std::string body =
      strided ? "forall i in 0:" + cat((n - 2) / 3) + " do A[3*i + 1] := B[i]; od"
              : "forall i in 1:" + cat(n - 2) +
                    " do A[i] := (B[i-1] + B[i+1])/2; od";
  return cat("processors ", procs, ";\n", "array A[0:", n - 1, "];\n",
             "array B[0:", n - 1, "];\n", "distribute A ", da, ";\n",
             "distribute B ", db, ";\n", body, "\n");
}

std::vector<double> input(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>((i * 13) % 101);
  return v;
}

void run_table(bool strided) {
  const i64 n = 4096;
  std::printf("\n--- %s kernel, n=%lld, distributed machine ---\n",
              strided ? "strided gather A[3i+1] := B[i]"
                      : "relaxation A[i] := (B[i-1]+B[i+1])/2",
              (long long)n);
  std::printf("%6s %-14s %-14s %12s %12s %10s %14s %14s\n", "P", "A", "B",
              "tests-naive", "tests-opt", "messages", "time-naive",
              "time-opt");
  for (i64 procs : {2, 4, 8, 16}) {
    for (const char* da : {"block", "scatter"}) {
      for (const char* db : {"block", "scatter"}) {
        std::string src = kernel(da, db, procs, n, strided);
        spmd::Program p = lang::compile(src);

        gen::BuildOptions naive;
        naive.force_runtime_resolution = true;
        rt::DistMachine base(lang::compile(src), naive);
        base.load("B", input(n));
        base.run();

        rt::DistMachine opt(p);
        opt.load("B", input(n));
        opt.run();

        if (opt.gather("A") != base.gather("A"))
          std::printf("  !! RESULT MISMATCH\n");
        std::printf("%6lld %-14s %-14s %12s %12s %10s %14s %14s\n",
                    (long long)procs, da, db,
                    with_commas(base.stats().tests).c_str(),
                    with_commas(opt.stats().tests).c_str(),
                    with_commas(opt.stats().messages).c_str(),
                    with_commas((i64)base.stats().sim_time).c_str(),
                    with_commas((i64)opt.stats().sim_time).c_str());
      }
    }
  }
}

void shared_table() {
  const i64 n = 4096;
  std::printf(
      "\n--- relaxation kernel on the shared-memory machine ---\n");
  std::printf("%6s %-14s %14s %14s %14s %14s\n", "P", "A", "tests-naive",
              "tests-opt", "time-naive", "time-opt");
  for (i64 procs : {2, 4, 8, 16}) {
    for (const char* da : {"block", "scatter", "blockscatter(8)"}) {
      std::string src = kernel(da, "block", procs, n, false);
      gen::BuildOptions naive;
      naive.force_runtime_resolution = true;
      rt::SharedMachine base(lang::compile(src), naive);
      base.load("B", input(n));
      base.run();
      rt::SharedMachine opt(lang::compile(src));
      opt.load("B", input(n));
      opt.run();
      if (opt.result("A") != base.result("A"))
        std::printf("  !! RESULT MISMATCH\n");
      std::printf("%6lld %-14s %14s %14s %14s %14s\n", (long long)procs,
                  da, with_commas(base.stats().tests).c_str(),
                  with_commas(opt.stats().tests).c_str(),
                  with_commas((i64)base.stats().sim_time).c_str(),
                  with_commas((i64)opt.stats().sim_time).c_str());
    }
  }
}

void BM_DistRelaxation(benchmark::State& state) {
  std::string src = kernel("block", "block", state.range(0), 4096, false);
  spmd::Program p = lang::compile(src);
  std::vector<double> b = input(4096);
  for (auto _ : state) {
    rt::DistMachine m(p);
    m.load("B", b);
    m.run();
    benchmark::DoNotOptimize(m.stats().messages);
  }
}
BENCHMARK(BM_DistRelaxation)->Arg(4)->Arg(16);

void BM_DistRelaxationNaive(benchmark::State& state) {
  std::string src = kernel("block", "block", state.range(0), 4096, false);
  spmd::Program p = lang::compile(src);
  gen::BuildOptions naive;
  naive.force_runtime_resolution = true;
  std::vector<double> b = input(4096);
  for (auto _ : state) {
    rt::DistMachine m(p, naive);
    m.load("B", b);
    m.run();
    benchmark::DoNotOptimize(m.stats().messages);
  }
}
BENCHMARK(BM_DistRelaxationNaive)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Sections 2.9/2.10: end-to-end SPMD, naive vs optimized ===\n");
  run_table(false);
  run_table(true);
  shared_table();
  std::printf(
      "\nExpected shape: optimized tests are 0 for these subscript "
      "classes while naive tests\ngrow ~ 2*P*n; aligned block/block "
      "relaxation exchanges only boundary elements while\nmismatched "
      "layouts pay ~n messages; makespan favors the optimized program "
      "everywhere.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
