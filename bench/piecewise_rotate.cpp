// Section 3.3 reproduction: piece-wise monotonic index functions.
//
// The paper's example is the rotate f(i) = (i+6) mod 20. The breakpoint
// split turns the function into two affine pieces, each optimized by the
// Table I machinery; the harness shows the split, verifies the schedules
// against brute force for block and scatter decompositions, and measures
// the cost against run-time resolution. Scaled-up rotates run under
// google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/cost.hpp"
#include "gen/optimizer.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;
using decomp::Decomp1D;
using fn::IndexFn;
using gen::BuildOptions;
using gen::OwnerComputePlan;

bool verify(const OwnerComputePlan& plan) {
  for (i64 p = 0; p < plan.decomp().procs(); ++p) {
    std::vector<i64> want;
    for (i64 i = plan.imin(); i <= plan.imax(); ++i) {
      i64 v = plan.f()(i);
      if (!in_range(v, 0, plan.decomp().n() - 1)) continue;
      if (plan.decomp().proc(v) == p) want.push_back(i);
    }
    if (plan.for_proc(p).materialize_sorted() != want) return false;
  }
  return true;
}

void show(const IndexFn& f, i64 n, i64 procs, i64 imin, i64 imax) {
  for (auto kind : {0, 1, 2}) {
    Decomp1D d = kind == 0   ? Decomp1D::block(n, procs)
                 : kind == 1 ? Decomp1D::scatter(n, procs)
                             : Decomp1D::block_scatter(n, procs, 2);
    OwnerComputePlan plan = OwnerComputePlan::build(f, d, imin, imax);
    BuildOptions forced;
    forced.force_runtime_resolution = true;
    OwnerComputePlan naive =
        OwnerComputePlan::build(f, d, imin, imax, forced);
    gen::PlanCost copt = gen::measure_plan(plan);
    gen::PlanCost cnaive = gen::measure_plan(naive);
    std::printf("  %-22s %-16s pieces=%lld tests: %s -> %s (%.1fx) %s\n",
                d.str().c_str(), to_string(plan.method()).c_str(),
                (long long)plan.sub_plans().size(),
                with_commas(cnaive.total.tests).c_str(),
                with_commas(copt.total.tests).c_str(),
                copt.speedup_vs(cnaive),
                verify(plan) ? "verified" : "MISMATCH");
  }
}

void BM_RotateNaive(benchmark::State& state) {
  i64 n = state.range(0);
  IndexFn f = IndexFn::affine_mod(1, n / 3, n, 0);
  BuildOptions forced;
  forced.force_runtime_resolution = true;
  OwnerComputePlan plan = OwnerComputePlan::build(
      f, Decomp1D::scatter(n, 8), 0, n - 1, forced);
  for (auto _ : state) {
    auto v = plan.for_proc(2).materialize();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_RotateNaive)->Arg(1 << 14)->Arg(1 << 17);

void BM_RotateSplit(benchmark::State& state) {
  i64 n = state.range(0);
  IndexFn f = IndexFn::affine_mod(1, n / 3, n, 0);
  OwnerComputePlan plan =
      OwnerComputePlan::build(f, Decomp1D::scatter(n, 8), 0, n - 1);
  for (auto _ : state) {
    auto v = plan.for_proc(2).materialize();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_RotateSplit)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Section 3.3: piece-wise monotonic functions ===\n\n");

  std::printf("f(i) = (i+6) mod 20, n=20, pmax=4 (the paper's rotate):\n");
  IndexFn rot = IndexFn::affine_mod(1, 6, 20, 0);
  auto pieces = rot.pieces(0, 19);
  std::printf("  breakpoint split: ");
  for (const auto& p : pieces)
    std::printf("[%lld:%lld] f=i%+lld  ", (long long)p.lo, (long long)p.hi,
                (long long)p.c);
  std::printf("(ibreak = %lld, matching the paper's derivation)\n",
              (long long)pieces[1].lo);
  show(rot, 20, 4, 0, 19);

  std::printf(
      "\nf(i) = (2*i + 10) mod 64 + 0, n=64, pmax=8 (strided rotate):\n");
  show(IndexFn::affine_mod(2, 10, 64, 0), 64, 8, 0, 26);

  std::printf("\nf(i) = (i + 5000) mod 16384, n=16384, pmax=16 (large):\n");
  show(IndexFn::affine_mod(1, 5000, 16384, 0), 16384, 16, 0, 16383);

  std::printf(
      "\nExpected shape: the split produces 2 affine pieces; closed-form "
      "tests drop to 0\nwhile run-time resolution pays one test per index "
      "per processor.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
