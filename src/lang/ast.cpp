#include "lang/ast.hpp"

#include "support/error.hpp"
#include "support/format.hpp"

namespace vcal::lang {

namespace {

int prec(AExpr::Kind k) {
  switch (k) {
    case AExpr::Kind::Int:
    case AExpr::Kind::Real:
    case AExpr::Kind::Var:
    case AExpr::Kind::Ref:
      return 4;
    case AExpr::Kind::Neg:
      return 3;
    case AExpr::Kind::Mul:
    case AExpr::Kind::RealDiv:
    case AExpr::Kind::IntDiv:
    case AExpr::Kind::Mod:
      return 2;
    case AExpr::Kind::Add:
    case AExpr::Kind::Sub:
      return 1;
  }
  return 0;
}

std::string print(const AExprPtr& e, int parent) {
  std::string out;
  switch (e->kind) {
    case AExpr::Kind::Int:
      out = std::to_string(e->int_value);
      break;
    case AExpr::Kind::Real:
      out = cat(e->real_value);
      break;
    case AExpr::Kind::Var:
      out = e->name;
      break;
    case AExpr::Kind::Ref: {
      std::vector<std::string> parts;
      for (const auto& s : e->subs) parts.push_back(print(s, 0));
      out = e->name + "[" + join(parts, ", ") + "]";
      break;
    }
    case AExpr::Kind::Neg:
      out = "-" + print(e->lhs, 3);
      break;
    case AExpr::Kind::Add:
      out = print(e->lhs, 1) + " + " + print(e->rhs, 1);
      break;
    case AExpr::Kind::Sub:
      out = print(e->lhs, 1) + " - " + print(e->rhs, 2);
      break;
    case AExpr::Kind::Mul:
      out = print(e->lhs, 2) + "*" + print(e->rhs, 2);
      break;
    case AExpr::Kind::RealDiv:
      out = print(e->lhs, 2) + "/" + print(e->rhs, 3);
      break;
    case AExpr::Kind::IntDiv:
      out = print(e->lhs, 2) + " div " + print(e->rhs, 3);
      break;
    case AExpr::Kind::Mod:
      out = print(e->lhs, 2) + " mod " + print(e->rhs, 3);
      break;
  }
  if (prec(e->kind) < parent) return "(" + out + ")";
  return out;
}

}  // namespace

std::string to_string(const AExprPtr& e) {
  require(e != nullptr, "to_string of null AExpr");
  return print(e, 0);
}

AExprPtr substitute(const AExprPtr& tree, const std::string& var,
                    const AExprPtr& replacement) {
  require(tree != nullptr, "substitute on null AExpr");
  switch (tree->kind) {
    case AExpr::Kind::Int:
    case AExpr::Kind::Real:
      return tree;
    case AExpr::Kind::Var:
      return tree->name == var ? replacement : tree;
    case AExpr::Kind::Ref: {
      AExpr n = *tree;
      n.subs.clear();
      for (const AExprPtr& s : tree->subs)
        n.subs.push_back(substitute(s, var, replacement));
      return std::make_shared<AExpr>(std::move(n));
    }
    default: {
      AExpr n = *tree;
      if (tree->lhs) n.lhs = substitute(tree->lhs, var, replacement);
      if (tree->rhs) n.rhs = substitute(tree->rhs, var, replacement);
      return std::make_shared<AExpr>(std::move(n));
    }
  }
}

}  // namespace vcal::lang
