#include "obs/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "lang/translate.hpp"
#include "obs/trace.hpp"
#include "rt/dist_machine.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace vcal::obs {

namespace {

// One executed step, reconstructed from the control lane.
struct Sample {
  std::string phase;     // "clause" or "redistribute"
  double wall_ns = 0.0;  // Begin..End span
  double units = 0.0;    // CostModel units charged (sim-time delta)
  // Predictors, from the step's StepCounters event.
  double iters = 0.0, tests = 0.0, values = 0.0, bulk = 0.0;
  bool timed = false, counted = false;
};

// Solves the 4x4 system M x = v in place (Gaussian elimination with
// partial pivoting). Returns false on a (numerically) singular M.
bool solve4(double M[4][4], double v[4], double x[4]) {
  int perm[4] = {0, 1, 2, 3};
  for (int c = 0; c < 4; ++c) {
    int piv = c;
    for (int r = c + 1; r < 4; ++r)
      if (std::fabs(M[perm[r]][c]) > std::fabs(M[perm[piv]][c])) piv = r;
    std::swap(perm[c], perm[piv]);
    double d = M[perm[c]][c];
    if (std::fabs(d) < 1e-12) return false;
    for (int r = c + 1; r < 4; ++r) {
      double f = M[perm[r]][c] / d;
      for (int k = c; k < 4; ++k) M[perm[r]][k] -= f * M[perm[c]][k];
      v[perm[r]] -= f * v[perm[c]];
    }
  }
  for (int c = 3; c >= 0; --c) {
    double acc = v[perm[c]];
    for (int k = c + 1; k < 4; ++k) acc -= M[perm[c]][k] * x[k];
    x[c] = acc / M[perm[c]][c];
  }
  return true;
}

std::vector<double> ramp(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>((i * 13) % 101);
  return v;
}

std::vector<Sample> run_traced(const spmd::Program& program) {
  // Serial ranks: on one host thread the per-step span is honest compute
  // time, not scheduler noise. Capacity covers every control event.
  rt::EngineOptions engine;
  engine.threads = 1;
  engine.trace = true;
  engine.trace_capacity =
      8 * static_cast<i64>(program.steps.size()) + 64;
  rt::DistMachine m(program, {}, {}, engine);
  for (const auto& [name, desc] : program.arrays)
    m.load(name, ramp(desc.total()));
  m.run();

  const Tracer* tr = m.tracer();
  require(tr != nullptr, "calibration run produced no tracer");
  std::map<i64, Sample> by_step;
  std::map<i64, double> begin_ns;
  double prev_virt = 0.0;
  tr->lane(tr->control_lane()).for_each([&](const TraceEvent& e) {
    switch (e.kind) {
      case EventKind::ClauseBegin:
      case EventKind::RedistBegin:
        begin_ns[e.step] = static_cast<double>(e.wall_ns);
        by_step[e.step].phase = e.kind == EventKind::ClauseBegin
                                    ? "clause"
                                    : "redistribute";
        break;
      case EventKind::ClauseEnd:
      case EventKind::RedistEnd: {
        auto it = begin_ns.find(e.step);
        if (it == begin_ns.end()) break;
        Sample& s = by_step[e.step];
        s.wall_ns = static_cast<double>(e.wall_ns) - it->second;
        s.timed = true;
        break;
      }
      case EventKind::StepCounters: {
        Sample& s = by_step[e.step];
        s.iters = static_cast<double>(e.a0);
        s.tests = static_cast<double>(e.a1);
        s.values = static_cast<double>(e.a2);
        s.bulk = static_cast<double>(e.a3);
        // e.virt is the cumulative sim-time including this step.
        s.units = e.virt - prev_virt;
        prev_virt = e.virt;
        s.counted = true;
        break;
      }
      default:
        break;
    }
  });

  std::vector<Sample> out;
  for (auto& [step, s] : by_step)
    if (s.timed && s.counted) out.push_back(s);
  return out;
}

}  // namespace

CalibrationReport calibrate(
    const std::vector<std::pair<std::string, spmd::Program>>& benches) {
  require(!benches.empty(), "calibrate() needs at least one benchmark");

  CalibrationReport rep;
  std::vector<std::pair<std::string, std::vector<Sample>>> all;
  for (const auto& [name, program] : benches)
    all.emplace_back(name, run_traced(program));

  // Ridge-regularized normal equations over every sample: the two
  // benchmarks deliberately stress different predictors (relaxation is
  // iteration-heavy, rotate is message-heavy), which keeps X'X well
  // conditioned; the ridge handles the degenerate single-bench case.
  double M[4][4] = {};
  double v[4] = {};
  double wall_total = 0.0, units_total = 0.0;
  for (const auto& [name, samples] : all)
    for (const Sample& s : samples) {
      const double x[4] = {s.iters, s.tests, s.values, s.bulk};
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) M[a][b] += x[a] * x[b];
        v[a] += x[a] * s.wall_ns;
      }
      wall_total += s.wall_ns;
      units_total += s.units;
      ++rep.samples;
    }
  double diag_max = 1.0;
  for (int a = 0; a < 4; ++a) diag_max = std::max(diag_max, M[a][a]);
  for (int a = 0; a < 4; ++a) M[a][a] += 1e-8 * diag_max;

  double coef[4] = {};
  require(solve4(M, v, coef), "calibration fit is singular");
  rep.iter_ns = coef[0];
  rep.test_ns = coef[1];
  rep.value_ns = coef[2];
  rep.bulk_ns = coef[3];
  rep.ns_per_sim_unit = units_total > 0.0 ? wall_total / units_total : 0.0;
  rep.values_per_us =
      rep.value_ns > 1e-9 ? 1000.0 / rep.value_ns : 0.0;

  auto predict = [&](const Sample& s) {
    return coef[0] * s.iters + coef[1] * s.tests + coef[2] * s.values +
           coef[3] * s.bulk;
  };
  for (const auto& [name, samples] : all) {
    for (const char* phase : {"clause", "redistribute"}) {
      CalibrationPhase ph;
      ph.bench = name;
      ph.phase = phase;
      for (const Sample& s : samples) {
        if (s.phase != phase) continue;
        ++ph.steps;
        ph.measured_ms += s.wall_ns / 1e6;
        ph.predicted_ms += predict(s) / 1e6;
        ph.model_units += s.units;
      }
      if (ph.steps == 0) continue;
      ph.err_pct = ph.measured_ms > 0.0
                       ? 100.0 * std::fabs(ph.predicted_ms - ph.measured_ms) /
                             ph.measured_ms
                       : 0.0;
      rep.phases.push_back(ph);
    }
  }
  return rep;
}

std::string CalibrationReport::str() const {
  std::string out = cat("calibration over ", samples, " step samples\n");
  out += cat("fitted ns: iter=", iter_ns, " test=", test_ns,
             " value=", value_ns, " bulk-msg=", bulk_ns, "\n");
  out += cat("ns-per-sim-unit=", ns_per_sim_unit,
             " bandwidth=", values_per_us, " values/us\n");
  out += cat(pad_right("bench", 12), pad_right("phase", 14),
             pad_left("steps", 6), pad_left("measured-ms", 13),
             pad_left("predicted-ms", 14), pad_left("err%", 8), "\n");
  for (const CalibrationPhase& p : phases) {
    char m[32], q[32], e[32];
    std::snprintf(m, sizeof m, "%.3f", p.measured_ms);
    std::snprintf(q, sizeof q, "%.3f", p.predicted_ms);
    std::snprintf(e, sizeof e, "%.1f", p.err_pct);
    out += cat(pad_right(p.bench, 12), pad_right(p.phase, 14),
               pad_left(cat(p.steps), 6), pad_left(m, 13), pad_left(q, 14),
               pad_left(e, 8), "\n");
  }
  return out;
}

std::vector<std::pair<std::string, spmd::Program>>
builtin_calibration_benches() {
  // Relaxation ping-pong: iteration-dominated, nearest-neighbour
  // messages only; a mid-run redistribution flips B to scatter so the
  // second half is communication-heavy and the redistribute phase class
  // gets a sample.
  const i64 n = 512, half = 30;
  std::string relax =
      cat("processors 4;\narray A[0:", n - 1, "];\narray B[0:", n - 1,
          "];\ndistribute A block;\ndistribute B block;\n");
  auto relax_pair = cat("forall i in 1:", n - 2,
                        " do A[i] := (B[i-1] + B[i+1])/2; od\n",
                        "forall i in 1:", n - 2,
                        " do B[i] := (A[i-1] + A[i+1])/2; od\n");
  for (i64 t = 0; t < half; ++t) relax += relax_pair;
  relax += "redistribute B scatter;\n";
  for (i64 t = 0; t < half; ++t) relax += relax_pair;

  // Rotate ping-pong: every read is remote (scatter vs block), so bulk
  // messages and moved values dominate — the latency/bandwidth probe.
  const i64 rn = 256, rhalf = 20;
  std::string rotate =
      cat("processors 4;\narray A[0:", rn - 1, "];\narray B[0:", rn - 1,
          "];\ndistribute A scatter;\ndistribute B block;\n");
  auto rotate_pair =
      cat("forall i in 0:", rn - 1, " do A[i] := B[(i + 7) mod ", rn,
          "]; od\n", "forall i in 0:", rn - 1, " do B[i] := A[(i + 7) mod ",
          rn, "]; od\n");
  for (i64 t = 0; t < rhalf; ++t) rotate += rotate_pair;
  rotate += "redistribute A block;\n";
  for (i64 t = 0; t < rhalf; ++t) rotate += rotate_pair;

  std::vector<std::pair<std::string, spmd::Program>> out;
  out.emplace_back("relax", lang::compile(relax));
  out.emplace_back("rotate", lang::compile(rotate));
  return out;
}

}  // namespace vcal::obs
