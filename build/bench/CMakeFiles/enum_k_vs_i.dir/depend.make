# Empty dependencies file for enum_k_vs_i.
# This may be replaced when dependencies are built.
