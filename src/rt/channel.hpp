// The per-(src,dst) bulk message channel shared by the in-process
// simulator (DistMachine) and the multi-process backend's worker
// (src/proc/worker.cpp). The proc worker reconstructs each channel from
// the (tag, value) pairs received over the ring transport in arrival
// order, so pack()/consume() semantics — and therefore every counter —
// stay bit-identical across backends by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/math.hpp"

namespace vcal::rt {

// All elements flowing src -> dst in one clause, packed as one bulk
// message: (tag, value) entries appended by the sender in phase 1 and
// consumed by tag in phase 2. Each channel is written only by its source
// rank and consumed only by its destination rank, so the phase loops
// parallelize without locks.
//
// Two matching representations exist (EngineOptions::keyed_channels):
// the bulk form sorts once and matches receives by binary search; the
// keyed form builds a tag -> slot hash index in arrival order. Both
// produce identical counters, so the conformance oracle can pin one
// against the other. Fault injection perturbs a packed channel in place;
// a perturbed bulk channel loses its sort order and falls back to linear
// matching, the way a real receive polls an unordered network.
struct Channel {
  std::vector<std::pair<i64, double>> msgs;
  std::vector<char> taken;
  std::unordered_map<i64, std::size_t> index;  // keyed matching only
  // Recording metadata for the communication-schedule inspector: the
  // (ref ordinal, source-local offset) behind each in-flight value.
  // Maintained only while a schedule is being recorded; pack() keeps it
  // in tandem with msgs through the sort/dedup permutation.
  std::vector<std::pair<std::int32_t, i64>> meta;
  // Lazy tag -> first-occurrence index for the perturbed (unsorted,
  // non-keyed) fallback, built once on the first fallback consume
  // instead of re-scanning the whole channel per receive.
  std::unordered_map<i64, std::size_t> lazy;
  bool lazy_built = false;
  bool keyed = false;
  bool sorted = false;  // binary search valid (bulk mode, unperturbed)
  i64 consumed = 0;
  std::size_t last_k = 0;  // slot of the last successful consume

  void push(i64 tag, double value) { msgs.emplace_back(tag, value); }

  // Dedups by tag — a resend of the same (ref, loop tuple) overwrites
  // the earlier value, mirroring keyed-mailbox semantics — then freezes
  // the matching structure: sort (bulk) or hash index (keyed).
  void pack() {
    const bool rec = !meta.empty();
    if (keyed) {
      std::vector<std::pair<i64, double>> out;
      std::vector<std::pair<std::int32_t, i64>> mout;
      out.reserve(msgs.size());
      if (rec) mout.reserve(meta.size());
      index.reserve(msgs.size());
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        const auto& m = msgs[i];
        auto [it, fresh] = index.try_emplace(m.first, out.size());
        if (fresh) {
          out.push_back(m);
          if (rec) mout.push_back(meta[i]);
        } else {
          out[it->second] = m;
          if (rec) mout[it->second] = meta[i];
        }
      }
      msgs = std::move(out);
      if (rec) meta = std::move(mout);
    } else if (!rec) {
      std::stable_sort(
          msgs.begin(), msgs.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::size_t w = 0;
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        if (w > 0 && msgs[w - 1].first == msgs[i].first)
          msgs[w - 1] = msgs[i];
        else
          msgs[w++] = msgs[i];
      }
      msgs.resize(w);
      sorted = true;
    } else {
      // Recording: run the identical stable sort + keep-last dedup
      // through an index permutation so meta stays in tandem — the
      // recorded pack order is exactly what replay will reproduce.
      std::vector<std::size_t> perm(msgs.size());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::size_t a, std::size_t b) {
                         return msgs[a].first < msgs[b].first;
                       });
      std::vector<std::pair<i64, double>> out;
      std::vector<std::pair<std::int32_t, i64>> mout;
      out.reserve(msgs.size());
      mout.reserve(meta.size());
      for (std::size_t i : perm) {
        if (!out.empty() && out.back().first == msgs[i].first) {
          out.back() = msgs[i];
          mout.back() = meta[i];
        } else {
          out.push_back(msgs[i]);
          mout.push_back(meta[i]);
        }
      }
      msgs = std::move(out);
      meta = std::move(mout);
      sorted = true;
    }
    taken.assign(msgs.size(), 0);
  }

  // Blocking receive: nullptr when no matching (or an already-consumed)
  // message is in flight.
  const double* consume(i64 tag) {
    std::size_t k = msgs.size();
    if (keyed) {
      auto it = index.find(tag);
      if (it == index.end()) return nullptr;
      k = it->second;
    } else if (sorted) {
      auto it = std::lower_bound(
          msgs.begin(), msgs.end(), tag,
          [](const auto& m, i64 t) { return m.first < t; });
      if (it == msgs.end() || it->first != tag) return nullptr;
      k = static_cast<std::size_t>(it - msgs.begin());
    } else {
      // Perturbed channel: index tag -> first occurrence once, then
      // scan forward from it only past taken duplicates — first-match
      // semantics at O(m) total instead of O(m²) per step.
      if (!lazy_built) {
        lazy.clear();
        for (std::size_t i = 0; i < msgs.size(); ++i)
          lazy.try_emplace(msgs[i].first, i);
        lazy_built = true;
      }
      auto it = lazy.find(tag);
      if (it == lazy.end()) return nullptr;
      k = it->second;
      while (k < msgs.size() && (taken[k] || msgs[k].first != tag)) ++k;
      if (k == msgs.size()) return nullptr;
    }
    if (taken[k]) return nullptr;
    taken[k] = 1;
    ++consumed;
    last_k = k;
    return &msgs[k].second;
  }

  i64 undelivered() const {
    return static_cast<i64>(msgs.size()) - consumed;
  }

  // ---- fault mutators (post-pack; return whether anything changed) ----

  bool drop(i64 i) {
    if (msgs.empty()) return false;
    auto k = static_cast<std::size_t>(
        i % static_cast<i64>(msgs.size()));
    msgs.erase(msgs.begin() + static_cast<std::ptrdiff_t>(k));
    taken.erase(taken.begin() + static_cast<std::ptrdiff_t>(k));
    lazy_built = false;
    if (keyed) reindex();
    return true;
  }

  bool duplicate(i64 i) {
    if (msgs.empty()) return false;
    auto k = static_cast<std::size_t>(
        i % static_cast<i64>(msgs.size()));
    msgs.push_back(msgs[k]);
    taken.push_back(0);
    // The appended copy breaks the sort order; receives fall back to
    // first-match linear scan, so the original is consumed and the copy
    // surfaces in the pairing check. The keyed index still names the
    // original, with the same effect.
    sorted = false;
    lazy_built = false;
    return true;
  }

  bool reorder() {
    if (msgs.size() < 2) return false;
    std::reverse(msgs.begin(), msgs.end());
    sorted = false;
    lazy_built = false;
    if (keyed) reindex();
    return true;
  }

  void reindex() {
    index.clear();
    for (std::size_t i = 0; i < msgs.size(); ++i)
      index.try_emplace(msgs[i].first, i);
  }
};

}  // namespace vcal::rt
