#include "verify/program_gen.hpp"

#include "support/format.hpp"

namespace vcal::verify {

std::string GeneratedProgram::source() const {
  std::string out;
  for (const std::string& d : decls) out += d + "\n";
  for (const std::string& s : stmts) out += s + "\n";
  return out;
}

ProgramGen::ProgramGen(std::uint64_t seed, GenOptions opts)
    : rng_(seed), opts_(opts), seed_(seed) {}

GeneratedProgram ProgramGen::next() {
  GeneratedProgram gp =
      (opts_.allow_2d && rng_.chance(0.3)) ? gen_2d() : gen_1d();
  gp.seed = seed_;
  return gp;
}

std::string ProgramGen::dist_1d(bool allow_replicated) {
  switch (rng_.uniform(0, allow_replicated ? 3 : 2)) {
    case 0:
      return "block";
    case 1:
      return "scatter";
    case 2:
      return cat("blockscatter(", rng_.uniform(1, 5), ")");
    default:
      return "replicated";
  }
}

// A read subscript that stays inside [0, n-1] for loop indices in
// [s, n-1-s]: plain i, a shift bounded by the budget s, or a mod wrap
// (always safe).
std::string ProgramGen::subscript(i64 n, i64 s) {
  switch (rng_.uniform(0, 2)) {
    case 0:
      return "i";
    case 1: {
      i64 c = s > 0 ? rng_.uniform(-s, s) : 0;
      if (c == 0) return "i";
      return c > 0 ? cat("i + ", c) : cat("i - ", -c);
    }
    default:
      return cat("(i + ", rng_.uniform(0, n - 1), ") mod ", n);
  }
}

GeneratedProgram ProgramGen::gen_1d() {
  GeneratedProgram gp;
  i64 n = rng_.uniform(8, opts_.max_n);
  i64 procs = rng_.uniform(1, opts_.max_procs);
  gp.decls.push_back(cat("processors ", procs, ";"));

  const char* names[3] = {"A", "B", "C"};
  std::vector<std::string> dists;
  std::vector<bool> halo(3, false);
  for (int a = 0; a < 3; ++a) {
    std::string d = dist_1d(/*allow_replicated=*/true);
    std::string overlap;
    if (d == "block" && opts_.allow_halo && rng_.chance(0.25)) {
      overlap = cat(" overlap(", rng_.uniform(1, 2), ")");
      halo[static_cast<std::size_t>(a)] = true;
    }
    dists.push_back(d);
    gp.decls.push_back(cat("array ", names[a], "[0:", n - 1, "];"));
    gp.decls.push_back(
        cat("distribute ", names[a], " ", d, overlap, ";"));
  }

  int clauses = static_cast<int>(rng_.uniform(1, opts_.max_clauses));
  for (int k = 0; k < clauses; ++k) {
    const char* lhs = names[rng_.uniform(0, 2)];
    const char* rhs1 = names[rng_.uniform(0, 2)];
    const char* rhs2 = names[rng_.uniform(0, 2)];
    // Shift budget: the loop range [s, n-1-s] keeps every +-s shift in
    // bounds (n >= 8, so the range is never empty).
    i64 s = rng_.uniform(0, 2);
    i64 lo = s, hi = n - 1 - s;
    std::string guard =
        (opts_.allow_guards && rng_.chance(0.3))
            ? cat(" | ", rhs1, "[i] > ", rng_.uniform(0, 5))
            : "";
    std::string stmt = cat(
        "forall i in ", lo, ":", hi, guard, " do ", lhs, "[i",
        s ? cat(" - ", s) : "", "] := ", rhs1, "[", subscript(n, s),
        "]*0.5 + ", rhs2, "[", subscript(n, s), "] - ",
        rng_.uniform(0, 9), "; od");
    gp.stmts.push_back(stmt);
    if (rng_.chance(0.3)) {
      // Iterate the clause verbatim: a clause must execute three times
      // at one decomposition epoch before the communication-schedule
      // inspector's replay path runs, so without repetition the corpus
      // would never cover the executor half of that split.
      gp.stmts.push_back(stmt);
      gp.stmts.push_back(stmt);
    }
    if (opts_.allow_redistribute && rng_.chance(0.3)) {
      // Redistribute a random non-replicated, non-halo array (halo'd
      // buffers carry overlap regions a redistribution would discard).
      for (int t = 0; t < 3; ++t) {
        int a = static_cast<int>(rng_.uniform(0, 2));
        if (dists[static_cast<std::size_t>(a)] == "replicated" ||
            halo[static_cast<std::size_t>(a)])
          continue;
        std::string nd = dist_1d(/*allow_replicated=*/false);
        dists[static_cast<std::size_t>(a)] = nd;
        gp.stmts.push_back(cat("redistribute ", names[a], " ", nd, ";"));
        break;
      }
    }
  }
  return gp;
}

GeneratedProgram ProgramGen::gen_2d() {
  GeneratedProgram gp;
  i64 rows = rng_.uniform(4, 10);
  i64 cols = rng_.uniform(4, 10);
  i64 procs = rng_.uniform(1, opts_.max_procs);
  gp.decls.push_back(cat("processors ", procs, ";"));

  auto dist2d = [&]() -> std::string {
    auto one = [&]() -> std::string {
      switch (rng_.uniform(0, 3)) {
        case 0:
          return "block";
        case 1:
          return "scatter";
        case 2:
          return cat("blockscatter(", rng_.uniform(1, 3), ")");
        default:
          return "*";
      }
    };
    std::string a = one(), b = one();
    if (a == "*" && b == "*") a = "block";  // keep it distributed
    return "(" + a + ", " + b + ")";
  };

  for (const char* name : {"M", "N"}) {
    gp.decls.push_back(
        cat("array ", name, "[0:", rows - 1, ", 0:", cols - 1, "];"));
    gp.decls.push_back(cat("distribute ", name, " ", dist2d(), ";"));
  }

  i64 si = rng_.uniform(0, 1), sj = rng_.uniform(0, 1);
  std::string isub = si ? "i - 1" : "i";
  std::string jsub =
      sj ? cat("(j + ", rng_.uniform(1, cols - 1), ") mod ", cols) : "j";
  gp.stmts.push_back(cat("forall i in ", si, ":", rows - 1,
                         ", j in 0:", cols - 1, " do M[i, j] := N[", isub,
                         ", ", jsub, "]*0.5 + ", rng_.uniform(0, 5),
                         "; od"));
  if (opts_.allow_redistribute && rng_.chance(0.5)) {
    // Redistribute one matrix mid-program: the second clause must run
    // against the new layout (plan-cache epoch bump on the distributed
    // machine).
    const char* target = rng_.chance(0.5) ? "M" : "N";
    gp.stmts.push_back(cat("redistribute ", target, " ", dist2d(), ";"));
  }
  // A second clause flowing M back into N.
  gp.stmts.push_back(cat("forall i in 0:", rows - 1, ", j in 0:",
                         cols - 1, " do N[i, j] := M[i, j] - 1; od"));
  return gp;
}

}  // namespace vcal::verify
