// Tests for compiled communication schedules (src/spmd/comm_schedule):
// the inspector/executor split on both machines, epoch invalidation on
// redistribution, fault-forced fallback to the tagged path, and the
// replay accounting surfaced through CommStats.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/shared_machine.hpp"

namespace vcal::rt {
namespace {

std::vector<double> ramp(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.25 + 1.0;
  return v;
}

// A communicating clause (block LHS vs scatter RHS: all-to-all traffic)
// repeated `reps` times, optionally with a redistribution in the middle.
std::string repeat_src(int reps, bool redistribute_middle = false) {
  std::string s =
      "processors 4;\n"
      "array A[0:31];\ndistribute A block;\n"
      "array B[0:31];\ndistribute B scatter;\n";
  for (int k = 0; k < reps; ++k) {
    if (redistribute_middle && k == reps / 2)
      s += "redistribute B block;\n";
    s += "forall i in 0:30 do A[i] := B[(i + 5) mod 32] + 1; od\n";
  }
  return s;
}

struct DistRun {
  std::vector<double> a;
  DistStats stats;
  std::vector<std::vector<i64>> matrix;
  CommStats comm;
  PathCounters paths;
};

DistRun run_dist(const std::string& src, EngineOptions e,
                 const FaultPlan* fault = nullptr) {
  spmd::Program program = lang::compile(src);
  DistMachine m(program, {}, {}, e);
  m.load("B", ramp(32));
  if (fault) m.inject(*fault);
  m.run();
  return {m.gather("A"), m.stats(), m.message_matrix(), m.comm_stats(),
          m.path_counters()};
}

void expect_same_observables(const DistRun& x, const DistRun& y) {
  EXPECT_EQ(x.a, y.a);
  EXPECT_EQ(x.matrix, y.matrix);
  EXPECT_EQ(x.stats.messages, y.stats.messages);
  EXPECT_EQ(x.stats.bulk_messages, y.stats.bulk_messages);
  EXPECT_EQ(x.stats.local_reads, y.stats.local_reads);
  EXPECT_EQ(x.stats.remote_reads, y.stats.remote_reads);
  EXPECT_EQ(x.stats.iterations, y.stats.iterations);
  EXPECT_EQ(x.stats.tests, y.stats.tests);
  EXPECT_EQ(x.stats.steps, y.stats.steps);
  EXPECT_EQ(x.stats.sim_time, y.stats.sim_time);
}

TEST(CommSchedule, ReplayIsBitIdenticalToTaggedPath) {
  for (int threads : {1, 4}) {
    EngineOptions on;
    on.threads = threads;
    EngineOptions off = on;
    off.comm_schedules = false;
    DistRun r_on = run_dist(repeat_src(6), on);
    DistRun r_off = run_dist(repeat_src(6), off);
    expect_same_observables(r_on, r_off);
    EXPECT_EQ(r_on.comm.sched_builds, 1) << threads;
    EXPECT_EQ(r_on.comm.sched_hits, 4) << threads;
    EXPECT_EQ(r_off.comm.sched_builds, 0) << threads;
    EXPECT_EQ(r_off.comm.sched_hits, 0) << threads;
    // Every packed value is consumed exactly once by a recorded slot.
    EXPECT_GT(r_on.comm.packed_values, 0);
    EXPECT_EQ(r_on.comm.packed_values, r_on.comm.unpacked_values);
    EXPECT_EQ(r_on.comm.packed_bytes,
              r_on.comm.packed_values * static_cast<i64>(sizeof(double)));
    // Replayed elements land in the sched path-counter column (or jit,
    // when the background-compiled module swapped in mid-run).
    EXPECT_GT(r_on.paths.sched + r_on.paths.jit, 0);
    EXPECT_EQ(r_off.paths.sched, 0);
  }
}

TEST(CommSchedule, ScheduleReuseCounts) {
  // T executions of one clause: first is the probing tagged pass, the
  // second records, every later one replays.
  const int kReps = 9;
  DistRun r = run_dist(repeat_src(kReps), {});
  EXPECT_EQ(r.comm.sched_builds, 1);
  EXPECT_EQ(r.comm.sched_hits, kReps - 2);
  EXPECT_EQ(r.comm.sched_fallbacks, 0);
}

TEST(CommSchedule, RedistributeInvalidatesSchedules) {
  spmd::Program program = lang::compile(repeat_src(6, /*redist=*/true));
  DistMachine m(program, {}, {}, {});
  m.load("B", ramp(32));
  m.run();
  // Three executions on each side of the redistribution: the schedule is
  // rebuilt from scratch after the epoch bump (plan and slot offsets
  // baked the old layout in), and exactly one live schedule remains.
  EXPECT_EQ(m.comm_stats().sched_builds, 2);
  EXPECT_EQ(m.comm_stats().sched_hits, 2);
  EXPECT_EQ(m.plan_cache().schedules(), 1);

  // And the perturbed run still matches the schedule-free one.
  EngineOptions off;
  off.comm_schedules = false;
  DistRun r_off = run_dist(repeat_src(6, true), off);
  EXPECT_EQ(m.gather("A"), r_off.a);
  EXPECT_EQ(m.stats().messages, r_off.stats.messages);
  EXPECT_EQ(m.message_matrix(), r_off.matrix);
}

TEST(CommSchedule, ArmedFaultForcesTaggedFallback) {
  // Find a busy channel at the replayed step first.
  DistRun probe = run_dist(repeat_src(4), {});
  i64 fsrc = -1, fdst = -1;
  for (i64 s = 0; s < 4 && fsrc < 0; ++s)
    for (i64 d = 0; d < 4 && fsrc < 0; ++d)
      if (probe.matrix[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(d)] > 4) {
        fsrc = s;
        fdst = d;
      }
  ASSERT_GE(fsrc, 0);

  // A benign perturbation (reorder) on a step that would otherwise
  // replay: the step must fall back to the real tagged channels, absorb
  // the fault, and leave every observable bit-identical.
  FaultPlan f;
  f.kind = FaultPlan::Kind::ReorderChannel;
  f.step = 2;
  f.src = fsrc;
  f.dst = fdst;
  DistRun faulted = run_dist(repeat_src(4), {}, &f);
  expect_same_observables(probe, faulted);
  EXPECT_EQ(faulted.comm.sched_fallbacks, 1);
  EXPECT_EQ(faulted.comm.sched_builds, 1);
  EXPECT_EQ(faulted.comm.sched_hits, 1);  // step 3 replays again

  // A stalled rank takes the same fallback route.
  FaultPlan stall;
  stall.kind = FaultPlan::Kind::StallRank;
  stall.step = 2;
  stall.rank = 1;
  stall.rounds = 2;
  DistRun stalled = run_dist(repeat_src(4), {}, &stall);
  expect_same_observables(probe, stalled);
  EXPECT_EQ(stalled.comm.sched_fallbacks, 1);
}

TEST(CommSchedule, NoPlanCacheDisablesSchedules) {
  EngineOptions e;
  e.cache_plans = false;
  DistRun r = run_dist(repeat_src(5), e);
  EXPECT_EQ(r.comm.sched_builds, 0);
  EXPECT_EQ(r.comm.sched_hits, 0);
  EXPECT_EQ(r.comm.sched_fallbacks, 5);  // counted once per clause step
  DistRun base = run_dist(repeat_src(5), {});
  expect_same_observables(base, r);
}

TEST(CommSchedule, ComposesWithKeyedChannelsAndInterpreter) {
  DistRun base = run_dist(repeat_src(6), {});
  for (int variant = 0; variant < 3; ++variant) {
    EngineOptions e;
    e.keyed_channels = variant != 1;
    e.compiled_kernels = variant != 0;
    DistRun r = run_dist(repeat_src(6), e);
    expect_same_observables(base, r);
    EXPECT_EQ(r.comm.sched_builds, 1) << variant;
    EXPECT_EQ(r.comm.sched_hits, 4) << variant;
  }
}

TEST(CommSchedule, SharedGatherReplayMatchesEnumeration) {
  spmd::Program program = lang::compile(repeat_src(6, /*redist=*/true));
  auto run_shared = [&](bool sched) {
    EngineOptions e;
    e.threads = 1;
    e.comm_schedules = sched;
    SharedMachine m(program, {}, {}, /*elide_barriers=*/false, e);
    m.load("B", ramp(32));
    m.run();
    return std::make_tuple(m.result("A"), m.stats(), m.comm_stats(),
                           m.path_counters());
  };
  auto [a_on, st_on, c_on, p_on] = run_shared(true);
  auto [a_off, st_off, c_off, p_off] = run_shared(false);
  EXPECT_EQ(a_on, a_off);
  EXPECT_EQ(st_on.barriers, st_off.barriers);
  EXPECT_EQ(st_on.iterations, st_off.iterations);
  EXPECT_EQ(st_on.tests, st_off.tests);
  EXPECT_EQ(st_on.sim_time, st_off.sim_time);
  // Same build/replay cadence as the distributed machine: record on the
  // second clean pass on each side of the redistribution.
  EXPECT_EQ(c_on.sched_builds, 2);
  EXPECT_EQ(c_on.sched_hits, 2);
  EXPECT_EQ(c_off.sched_builds, 0);
  EXPECT_EQ(c_off.sched_hits, 0);
  EXPECT_GT(p_on.sched + p_on.jit, 0);
  EXPECT_EQ(p_off.sched, 0);
}

}  // namespace
}  // namespace vcal::rt
