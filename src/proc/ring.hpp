// Shared-memory ring channels for the multi-process backend: one
// single-producer / single-consumer ring per ordered (src, dst) rank
// pair, backed by an mmap'd file in the run's channel directory.
//
// The ring carries fixed 16-byte slots. A frame is one header slot —
// magic, kind (CLAUSE / HALO / REDIST), payload slot count, step index —
// followed by `count` payload slots, matching the engine's bulk-channel
// framing: all elements flowing src -> dst in one step travel as one
// frame. CLAUSE payload slots carry (tag, value) pairs in the sender's
// arrival order; HALO and REDIST slots carry bare values whose order
// both endpoints derive independently from the decompositions.
//
// head/tail are monotonically increasing slot counters in the mapped
// header (producer writes head with release, consumer writes tail with
// release; each side reads the other's counter with acquire), so a
// partial write of a large frame is visible to the reader immediately —
// workers interleave partial writes and opportunistic reads to stay
// deadlock-free even when a frame exceeds the ring capacity.
#pragma once

#include <cstdint>
#include <string>

#include "support/math.hpp"

namespace vcal::proc {

struct Slot {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

enum class FrameKind : std::uint32_t {
  Clause = 1,  // (tag, value) pairs, arrival order
  Halo = 2,    // halo boundary values, enumeration order
  Redist = 3,  // migrating elements, global index order
};

// Header slot: a = magic(16) | kind(16) | count(32), b = step.
inline constexpr std::uint64_t kFrameMagic = 0x7663;  // "vc"

inline Slot frame_header(FrameKind kind, std::uint32_t count, i64 step) {
  Slot s;
  s.a = (kFrameMagic << 48) |
        (static_cast<std::uint64_t>(kind) << 32) | count;
  s.b = static_cast<std::uint64_t>(step);
  return s;
}

inline bool parse_frame_header(Slot s, FrameKind* kind,
                               std::uint32_t* count, i64* step) {
  if ((s.a >> 48) != kFrameMagic) return false;
  *kind = static_cast<FrameKind>((s.a >> 32) & 0xffff);
  *count = static_cast<std::uint32_t>(s.a & 0xffffffff);
  *step = static_cast<i64>(s.b);
  return *kind == FrameKind::Clause || *kind == FrameKind::Halo ||
         *kind == FrameKind::Redist;
}

inline Slot clause_slot(i64 tag, double value) {
  Slot s;
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof value);
  __builtin_memcpy(&bits, &value, sizeof bits);
  s.a = static_cast<std::uint64_t>(tag);
  s.b = bits;
  return s;
}

inline Slot value_slot(double value) {
  Slot s;
  std::uint64_t bits;
  __builtin_memcpy(&bits, &value, sizeof bits);
  s.b = bits;
  return s;
}

inline i64 slot_tag(Slot s) { return static_cast<i64>(s.a); }

inline double slot_value(Slot s) {
  double v;
  __builtin_memcpy(&v, &s.b, sizeof v);
  return v;
}

/// Ring file for the ordered (src, dst) pair inside a channel dir.
inline std::string ring_path(const std::string& dir, i64 src, i64 dst) {
  return dir + "/ring_" + std::to_string(src) + "_" +
         std::to_string(dst) + ".ch";
}

class Ring {
 public:
  Ring() = default;
  Ring(Ring&& o) noexcept { swap(o); }
  Ring& operator=(Ring&& o) noexcept {
    swap(o);
    return *this;
  }
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;
  ~Ring();

  /// Creates (truncating) and initializes the ring file. Called by the
  /// launcher before any worker is spawned.
  static void create(const std::string& path, i64 slots);

  /// Maps an existing ring file. Both endpoints map read-write (the
  /// producer writes head + data, the consumer writes tail).
  void open(const std::string& path);

  bool is_open() const { return map_ != nullptr; }
  i64 capacity() const { return slots_; }

  /// Producer side: writes up to n slots, returns how many fit.
  i64 try_write(const Slot* s, i64 n);

  /// Consumer side: reads up to max slots, returns how many arrived.
  i64 try_read(Slot* s, i64 max);

 private:
  void swap(Ring& o) noexcept;

  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  i64 slots_ = 0;
  std::uint64_t* head_ = nullptr;  // producer-owned, monotonic
  std::uint64_t* tail_ = nullptr;  // consumer-owned, monotonic
  Slot* data_ = nullptr;
};

}  // namespace vcal::proc
