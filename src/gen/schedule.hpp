// Per-processor iteration schedules.
//
// A Schedule answers, for one processor p, the paper's central question:
// which loop indices i in [imin, imax] satisfy proc(f(i)) = p — and at
// what cost. Closed-form methods (Theorems 1-3) produce arithmetic-
// progression pieces enumerated with zero membership tests; probing
// methods (enumerate-on-k, run-time resolution) carry the index function
// and decomposition and count every test they perform, so benchmarks can
// report exactly the quantities the paper argues about.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "decomp/decomp1d.hpp"
#include "fn/index_fn.hpp"

namespace vcal::gen {

/// Which Table I cell / theorem produced a schedule.
enum class Method {
  Theorem1Constant,   // f(i) = c: one processor gets the whole range
  BlockBounds,        // block decomposition, direct j-range
  RepeatedBlock,      // Theorem 2: general BS(b), loop over k then j
  RepeatedScatter,    // Section 3.2.i alternative for BS(b)
  Theorem3Linear,     // scatter + affine via the diophantine progression
  Corollary1,         // scatter + affine, pmax mod a == 0
  Corollary2,         // scatter + affine, a mod pmax == 0
  PiecewiseSplit,     // Section 3.3: affine-mod split at breakpoints
  MonotoneBlock,      // block + monotone f via bisection inverse
  EnumerateK,         // Section 3.2 end: walk k, probe f^-1
  Replicated,         // replicated array: every processor owns everything
  Intersection,       // conjunction of several per-dimension schedules
  RuntimeResolution,  // fallback: scan the range testing proc(f(i)) = p
};

std::string to_string(Method m);

/// One arithmetic-progression piece: emits start + j*stride for
/// j = 0 .. count-1.
struct Piece {
  i64 start = 0;
  i64 count = 0;
  i64 stride = 1;

  i64 last() const { return start + (count - 1) * stride; }
};

/// Counters accumulated while enumerating a schedule. `tests` counts
/// membership/probe evaluations (the run-time overhead the optimizations
/// eliminate); `loop_iters` counts loop-body entries including overhead
/// iterations that yield nothing; `yielded` counts produced indices.
struct EnumStats {
  i64 tests = 0;
  i64 loop_iters = 0;
  i64 yielded = 0;
  i64 pieces = 0;

  EnumStats& operator+=(const EnumStats& o) {
    tests += o.tests;
    loop_iters += o.loop_iters;
    yielded += o.yielded;
    pieces += o.pieces;
    return *this;
  }
};

class Schedule {
 public:
  /// Closed-form schedule from pieces (no tests at enumeration time).
  static Schedule closed_form(Method m, std::vector<Piece> pieces);

  /// Empty schedule (processor executes nothing).
  static Schedule empty(Method m);

  /// Run-time resolution: scan [ilo, ihi], keep i with proc(f(i)) == p
  /// (f-images outside [0, d.n()-1] are skipped and still cost a test).
  static Schedule runtime_resolution(fn::IndexFn f, decomp::Decomp1D d,
                                     i64 p, i64 ilo, i64 ihi);

  /// Enumerate-on-k (Section 3.2 end): for t = first_t, first_t + t_step,
  /// ... <= last_t, probe the monotone f for preimages of t within
  /// [ilo, ihi]; each probe is one test.
  static Schedule enumerate_k(fn::IndexFn f, i64 p, i64 ilo, i64 ihi,
                              i64 first_t, i64 last_t, i64 t_step);

  Method method() const noexcept { return method_; }

  /// True when enumeration needs no membership tests.
  bool is_closed_form() const noexcept { return !probe_.has_value(); }

  const std::vector<Piece>& pieces() const;

  /// Produces the indices (ascending within each piece; use
  /// materialize_sorted for set comparisons) and accumulates counters.
  std::vector<i64> materialize(EnumStats* stats = nullptr) const;

  /// materialize() then sort (schedule order across pieces need not be
  /// globally ascending, e.g. repeated scatter interleaves).
  std::vector<i64> materialize_sorted(EnumStats* stats = nullptr) const;

  /// Exact element count. O(#pieces) for closed forms; enumerates for
  /// probing schedules.
  i64 count() const;

  /// E.g. "theorem-3 [x0=3 stride=4 t=0:24]".
  std::string str() const;

 private:
  struct Probe {
    fn::IndexFn f;
    std::optional<decomp::Decomp1D> d;  // RuntimeResolution only
    i64 p = 0;
    i64 ilo = 0, ihi = -1;
    i64 first_t = 0, last_t = -1, t_step = 1;  // EnumerateK only
  };

  explicit Schedule(Method m) : method_(m) {}

  Method method_;
  std::vector<Piece> pieces_;
  std::optional<Probe> probe_;
};

}  // namespace vcal::gen
