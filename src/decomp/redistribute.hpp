// Dynamic redistribution: moving an array from one decomposition to
// another at run time.
//
// The paper's introduction singles out dynamic decompositions (run-time
// redistribution) as the feature earlier systems lacked or intermingled
// with user code; its Section 5 lists them as the research direction the
// calculus enables. Because both layouts are views with closed-form
// proc()/local() maps, the redistribution plan falls out mechanically:
// every element whose owner changes contributes exactly one message.
#pragma once

#include <string>
#include <vector>

#include "decomp/array_desc.hpp"

namespace vcal::decomp {

/// One element move: source rank/local slot to destination rank/local
/// slot. Element identity is the dense row-major linearization.
struct Move {
  i64 src_rank;
  i64 src_local;
  i64 dst_rank;
  i64 dst_local;
  i64 dense_index;
};

struct RedistPlan {
  std::vector<Move> moves;       // elements that change owner
  i64 stationary = 0;            // elements whose owner is unchanged
  std::vector<i64> sends_by_rank;    // messages leaving each rank
  std::vector<i64> receives_by_rank; // messages arriving at each rank
  i64 total_messages() const {
    return static_cast<i64>(moves.size());
  }
  std::string summary() const;
};

/// Builds the redistribution plan from `from` to `to`. The two
/// descriptors must describe the same index space on the same number of
/// processors (names may differ). Neither may be replicated.
RedistPlan plan_redistribution(const ArrayDesc& from, const ArrayDesc& to);

}  // namespace vcal::decomp
