// The serve subsystem: compile-cache keying and singleflight, served
// results bit-identical to direct in-process execution, warm-cache
// requests skipping the parse->rewrite->plan front half (pinned by
// counters), session isolation (no plan/trace/metric bleed between
// concurrent sessions), backpressure, and clean shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/engine_context.hpp"
#include "rt/seq_executor.hpp"
#include "rt/shared_machine.hpp"
#include "serve/client.hpp"
#include "serve/compile_cache.hpp"
#include "serve/server.hpp"

namespace {

using namespace vcal;

const char kRotate[] =
    "processors 4;\n"
    "array A[0:9]; array B[0:9];\n"
    "distribute A block; distribute B block;\n"
    "forall i in 0:9 do A[i] := B[(i + 6) mod 10]; od\n";

const char kRotateScatter[] =
    "processors 4;\n"
    "array A[0:9]; array B[0:9];\n"
    "distribute A scatter; distribute B block;\n"
    "forall i in 0:9 do A[i] := B[(i + 6) mod 10]; od\n";

const char kTwoStep[] =
    "processors 4;\n"
    "array A[0:19]; array B[0:19];\n"
    "distribute A block; distribute B scatter;\n"
    "forall i in 0:18 do A[i] := B[i + 1]*2; od\n"
    "forall i in 0:18 do B[i] := A[i] + 1; od\n";

std::vector<double> ramp(i64 n) {
  std::vector<double> v(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<size_t>(i)] = static_cast<double>(i);
  return v;
}

serve::RunRequest make_req(const std::string& source,
                           serve::Target target = serve::Target::Dist) {
  serve::RunRequest req;
  req.source = source;
  req.target = target;
  req.inputs.push_back({"B", /*ramp=*/true, {}});
  req.gather = {"A"};
  return req;
}

/// A started server plus one connected client, torn down in order.
struct ServeFixture {
  serve::Server server;
  serve::Client client;

  explicit ServeFixture(serve::ServeOptions opts = {})
      : server(std::move(opts)) {
    server.start();
    client.connect(server.address());
  }
  ~ServeFixture() {
    client.close();
    server.stop();
  }
};

// ---- compile cache ---------------------------------------------------

TEST(CompileCache, FingerprintCoversSourceAndBuildOptions) {
  gen::BuildOptions b;
  std::uint64_t base = serve::compile_fingerprint(kRotate, b);
  EXPECT_EQ(base, serve::compile_fingerprint(kRotate, b));  // stable

  EXPECT_NE(base, serve::compile_fingerprint(kRotateScatter, b));

  gen::BuildOptions naive = b;
  naive.force_runtime_resolution = true;
  EXPECT_NE(base, serve::compile_fingerprint(kRotate, naive));

  gen::BuildOptions pieces = b;
  pieces.max_pieces = 7;
  EXPECT_NE(base, serve::compile_fingerprint(kRotate, pieces));
}

TEST(CompileCache, HitSkipsCompileAndErrorsAreCached) {
  serve::CompileCache cache;
  auto first = cache.get(kRotate, {});
  EXPECT_TRUE(first.entry->ok);
  EXPECT_FALSE(first.hit);
  auto second = cache.get(kRotate, {});
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.entry.get(), second.entry.get());  // shared, not rebuilt
  EXPECT_EQ(cache.counters().compiles, 1);

  // A compile error is an outcome worth caching too.
  auto bad1 = cache.get("array A[0:9]\n", {});
  EXPECT_FALSE(bad1.entry->ok);
  EXPECT_EQ(bad1.entry->error_kind, serve::ErrKind::Parse);
  auto bad2 = cache.get("array A[0:9]\n", {});
  EXPECT_TRUE(bad2.hit);
  EXPECT_EQ(cache.counters().compiles, 2);
  EXPECT_EQ(cache.counters().entries, 2);
}

TEST(CompileCache, SingleflightCoalescesConcurrentMisses) {
  serve::CompileCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  std::vector<serve::CompileCache::Outcome> outcomes(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      outcomes[static_cast<size_t>(t)] = cache.get(kTwoStep, {});
    });
  for (auto& t : threads) t.join();

  auto c = cache.counters();
  EXPECT_EQ(c.compiles, 1);  // the whole point
  EXPECT_EQ(c.misses, 1);
  EXPECT_EQ(c.hits + c.coalesced, kThreads - 1);
  for (const auto& o : outcomes) {
    ASSERT_NE(o.entry, nullptr);
    EXPECT_TRUE(o.entry->ok);
    EXPECT_EQ(o.entry.get(), outcomes[0].entry.get());
  }
}

TEST(CompileCache, LruBoundEvictsLeastRecentlyRequested) {
  serve::CompileCache cache(/*capacity=*/2);
  EXPECT_EQ(cache.capacity(), 2);
  cache.get(kRotate, {});                        // resident: A
  auto b = cache.get(kRotateScatter, {});        // resident: B, A
  EXPECT_EQ(cache.counters().entries, 2);

  // A hit refreshes recency, so B (not A) is now the eviction victim.
  EXPECT_TRUE(cache.get(kRotate, {}).hit);
  cache.get(kTwoStep, {});  // over capacity: B is dropped
  auto c = cache.counters();
  EXPECT_EQ(c.entries, 2);
  EXPECT_EQ(c.evictions, 1);
  EXPECT_TRUE(cache.get(kRotate, {}).hit);   // survived the eviction
  EXPECT_TRUE(cache.get(kTwoStep, {}).hit);  // resident

  // The evicted program recompiles on its next request (a miss), and
  // inserting it evicts today's LRU in turn.
  auto again = cache.get(kRotateScatter, {});
  EXPECT_FALSE(again.hit);
  EXPECT_EQ(cache.counters().evictions, 2);
  EXPECT_EQ(cache.counters().entries, 2);

  // Eviction only dropped the cache's reference: the old shared entry
  // is still alive and usable for anyone holding it.
  EXPECT_TRUE(b.entry->ok);
  EXPECT_NE(b.entry.get(), again.entry.get());  // genuinely recompiled
}

TEST(Serve, CacheEntriesBoundShowsUpInServerStats) {
  serve::ServeOptions opts;
  opts.cache_entries = 1;
  ServeFixture fx(std::move(opts));
  ASSERT_EQ(fx.client.run(make_req(kRotate)).status, serve::Status::Ok);
  ASSERT_EQ(fx.client.run(make_req(kTwoStep)).status, serve::Status::Ok);

  serve::ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.cache_entries, 1);    // the bound held
  EXPECT_EQ(stats.cache_evictions, 1);  // kRotate was dropped
  // The evicted program still serves correctly — it just recompiles.
  serve::RunResult back = fx.client.run(make_req(kRotate));
  ASSERT_EQ(back.status, serve::Status::Ok);
  EXPECT_FALSE(back.cache_hit);
  EXPECT_EQ(fx.server.stats().cache_evictions, 2);
}

// ---- engine-context isolation (the de-globalized state) --------------

TEST(EngineContext, PlanCachesAndTracersDoNotBleedAcrossContexts) {
  auto ctx_a = std::make_shared<rt::EngineContext>();
  auto ctx_b = std::make_shared<rt::EngineContext>();
  spmd::Program prog = lang::compile(kRotate);

  rt::EngineOptions traced;
  traced.trace = true;
  {
    rt::DistMachine m(prog, {}, {}, traced, ctx_a, "rotate");
    m.load("B", ramp(10));
    m.run();
  }
  // Context A traced; context B never allocated a lane or an event.
  EXPECT_GT(ctx_a->trace_events(), 0);
  EXPECT_EQ(ctx_b->trace_events(), 0);
  EXPECT_EQ(ctx_b->trace_lanes(), 0);

  // B's first run of the same scope misses (no cross-context warmth)...
  {
    rt::DistMachine m(prog, {}, {}, {}, ctx_b, "rotate");
    m.load("B", ramp(10));
    m.run();
    EXPECT_EQ(m.plan_cache().hits(), 0);
    EXPECT_GT(m.plan_cache().misses(), 0);
  }
  // ...and B's second run hits the cache its first run warmed. The
  // leased cache's counters are cumulative across leases, so compare
  // deltas (as the serve layer does).
  {
    rt::DistMachine m(prog, {}, {}, {}, ctx_b, "rotate");
    i64 h0 = m.plan_cache().hits(), m0 = m.plan_cache().misses();
    m.load("B", ramp(10));
    m.run();
    EXPECT_GT(m.plan_cache().hits() - h0, 0);
    EXPECT_EQ(m.plan_cache().misses() - m0, 0);
  }
}

TEST(EngineContext, ConcurrentLeasesOfOneScopeGetDistinctCaches) {
  auto ctx = std::make_shared<rt::EngineContext>();
  spmd::PlanCache* a = ctx->acquire_plans("s");
  spmd::PlanCache* b = ctx->acquire_plans("s");
  EXPECT_NE(a, b);  // a PlanCache serves one machine at a time
  ctx->release_plans(a);
  spmd::PlanCache* c = ctx->acquire_plans("s");
  EXPECT_EQ(c, a);  // released lease comes back warm
  ctx->release_plans(b);
  ctx->release_plans(c);
}

// ---- served execution ------------------------------------------------

TEST(Serve, ServedResultsMatchDirectExecutionOnEveryTarget) {
  ServeFixture fx;
  for (const char* source : {kRotate, kRotateScatter, kTwoStep}) {
    spmd::Program prog = lang::compile(source);
    i64 n = prog.arrays.find("B")->second.total();

    rt::DistMachine direct(prog, {}, {}, {});
    direct.load("B", ramp(n));
    direct.run();

    serve::RunResult dist = fx.client.run(make_req(source));
    ASSERT_EQ(dist.status, serve::Status::Ok) << dist.error;
    ASSERT_EQ(dist.stores.size(), 1u);
    EXPECT_EQ(dist.stores[0].second, direct.gather("A"));
    EXPECT_EQ(dist.stats_line, direct.stats().str());

    serve::RunResult shared =
        fx.client.run(make_req(source, serve::Target::Shared));
    ASSERT_EQ(shared.status, serve::Status::Ok) << shared.error;
    EXPECT_EQ(shared.stores[0].second, direct.gather("A"));

    serve::RunResult seq =
        fx.client.run(make_req(source, serve::Target::Seq));
    ASSERT_EQ(seq.status, serve::Status::Ok) << seq.error;
    EXPECT_EQ(seq.stores[0].second, direct.gather("A"));
  }
}

TEST(Serve, WarmRequestSkipsParseRewritePlan) {
  ServeFixture fx;
  serve::RunResult cold = fx.client.run(make_req(kTwoStep));
  ASSERT_EQ(cold.status, serve::Status::Ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.compile_ms, 0.0);
  EXPECT_GT(cold.plan_misses, 0);  // cold: every clause plan is built

  serve::RunResult warm = fx.client.run(make_req(kTwoStep));
  ASSERT_EQ(warm.status, serve::Status::Ok) << warm.error;
  // The acceptance pin: a warm served request skips the front half
  // (compile-cache hit, no recompile) AND the plan half (the leased
  // plan cache comes back warm, so zero plan misses).
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.compile_ms, 0.0);
  EXPECT_EQ(warm.plan_misses, 0);
  EXPECT_GT(warm.plan_hits, 0);
  EXPECT_EQ(warm.stores, cold.stores);  // still the same bits

  serve::ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.compiles, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
}

TEST(Serve, ChangedBuildOptionsOrDecompositionMissesTheCache) {
  ServeFixture fx;
  serve::RunResult first = fx.client.run(make_req(kRotate));
  ASSERT_EQ(first.status, serve::Status::Ok);

  // Same source, different BuildOptions: a different compiled program.
  serve::RunRequest naive = make_req(kRotate);
  naive.build.force_runtime_resolution = true;
  serve::RunResult second = fx.client.run(std::move(naive));
  ASSERT_EQ(second.status, serve::Status::Ok);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.stores, first.stores);  // results agree regardless

  // Changed decomposition lives in the source text, so it misses too.
  serve::RunResult third = fx.client.run(make_req(kRotateScatter));
  ASSERT_EQ(third.status, serve::Status::Ok);
  EXPECT_FALSE(third.cache_hit);

  EXPECT_EQ(fx.server.stats().compiles, 3);
}

TEST(Serve, EngineOptionsShareTheCompiledProgram) {
  // Engine knobs never change the compiled program, so they are not in
  // the cache key: the second request hits even with different knobs —
  // and still produces identical bits (the oracle's invariant, served).
  ServeFixture fx;
  serve::RunResult a = fx.client.run(make_req(kRotate));
  serve::RunRequest req = make_req(kRotate);
  req.engine.threads = 1;
  req.engine.compiled_kernels = false;
  req.engine.jit = false;
  serve::RunResult b = fx.client.run(std::move(req));
  ASSERT_EQ(b.status, serve::Status::Ok) << b.error;
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.stores, b.stores);
}

TEST(Serve, SeqKernelsRideTheSharedCompileCacheEntry) {
  // The sequential target has no plan cache; its per-clause artifact is
  // the compiled kernel, memoized on the compile-cache entry itself.
  // The first seq execution builds one kernel per clause (reported
  // through the plan counters); every later one — even from another
  // session — reuses them.
  ServeFixture fx;
  serve::RunResult cold =
      fx.client.run(make_req(kTwoStep, serve::Target::Seq));
  ASSERT_EQ(cold.status, serve::Status::Ok) << cold.error;
  EXPECT_EQ(cold.plan_misses, 2);  // kTwoStep has two clauses
  EXPECT_EQ(cold.plan_hits, 0);

  serve::Client other;
  other.connect(fx.server.address());
  serve::RunResult warm = other.run(make_req(kTwoStep, serve::Target::Seq));
  ASSERT_EQ(warm.status, serve::Status::Ok) << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.plan_misses, 0);  // kernels came with the entry
  EXPECT_EQ(warm.plan_hits, 2);
  EXPECT_EQ(warm.stores, cold.stores);
  other.close();
}

TEST(Serve, SessionsAreIsolated) {
  ServeFixture fx;
  serve::Client other;
  other.connect(fx.server.address());
  EXPECT_NE(other.session_id(), fx.client.session_id());

  // Session 1 warms the caches with three requests; session 2 runs the
  // same program once. The content-addressed compile cache is the one
  // deliberately shared layer (compiles are pure), so session 2 hits
  // it — but its *engine* state is its own: a cold plan cache, so its
  // first execution still plans every clause.
  for (int i = 0; i < 3; ++i) {
    serve::RunResult r = fx.client.run(make_req(kRotate));
    ASSERT_EQ(r.status, serve::Status::Ok);
  }
  serve::RunResult r2 = other.run(make_req(kRotate));
  ASSERT_EQ(r2.status, serve::Status::Ok);
  EXPECT_TRUE(r2.cache_hit);     // compiled once, served to everyone
  EXPECT_GT(r2.plan_misses, 0);  // but session 2's own cold plan cache

  // Per-session metrics count each tenant's traffic only.
  std::string server_json, s1, s2;
  fx.client.metrics(&server_json, &s1);
  other.metrics(&server_json, &s2);
  EXPECT_NE(s1.find("\"requests\":3"), std::string::npos) << s1;
  EXPECT_NE(s2.find("\"requests\":1"), std::string::npos) << s2;

  // The server-wide view aggregates: two sessions, one compile of the
  // shared program text.
  serve::ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.sessions_opened, 2);
  EXPECT_EQ(stats.compiles, 1);
  other.close();
}

TEST(Serve, ConcurrentSessionsRaceSafely) {
  serve::ServeOptions opts;
  opts.executors = 4;
  ServeFixture fx(opts);

  constexpr int kClients = 6, kRequests = 8;
  spmd::Program prog = lang::compile(kTwoStep);
  rt::DistMachine direct(prog, {}, {}, {});
  direct.load("B", ramp(20));
  direct.run();
  const std::vector<double> expect = direct.gather("A");

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      serve::Client client;
      client.connect(fx.server.address());
      for (int i = 0; i < kRequests; ++i) {
        serve::RunResult r = client.run(make_req(kTwoStep));
        if (r.status != serve::Status::Ok ||
            r.stores[0].second != expect)
          failures.fetch_add(1);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  serve::ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.requests, kClients * kRequests);
  // One compile total: the first racer builds, the rest hit or
  // coalesce onto its singleflight slot — across sessions.
  EXPECT_EQ(stats.compiles, 1);
  EXPECT_EQ(stats.cache_hits + stats.cache_coalesced,
            kClients * kRequests - 1);
}

TEST(Serve, BackpressureRejectsBeyondInflightCap) {
  serve::ServeOptions opts;
  opts.executors = 1;
  opts.session_inflight = 1;
  ServeFixture fx(opts);

  // A deliberately heavy program holds the single executor long enough
  // for the follow-up submissions to find the session at its cap.
  std::string heavy =
      "processors 4;\narray A[0:4095]; array B[0:4095];\n"
      "distribute A block; distribute B scatter;\n";
  for (int i = 0; i < 40; ++i)
    heavy += "forall i in 0:4094 do A[i] := B[(i + 17) mod 4095]*2; od\n";

  serve::RunRequest slow = make_req(heavy);
  slow.engine.threads = 1;
  slow.engine.jit = false;
  i64 slow_id = fx.client.submit(std::move(slow));
  i64 fast_id = fx.client.submit(make_req(kRotate));
  serve::RunResult fast = fx.client.wait(fast_id);
  EXPECT_EQ(fast.status, serve::Status::Rejected);
  EXPECT_NE(fast.error.find("in-flight"), std::string::npos);

  serve::RunResult done = fx.client.wait(slow_id);
  EXPECT_EQ(done.status, serve::Status::Ok) << done.error;
  EXPECT_GE(fx.server.stats().rejected, 1);

  // After the slow request drains, the session serves again.
  serve::RunResult again = fx.client.run(make_req(kRotate));
  EXPECT_EQ(again.status, serve::Status::Ok);
}

TEST(Serve, ErrorsPropagateWithKindAndCachedCompileErrors) {
  ServeFixture fx;
  serve::RunResult parse = fx.client.run(make_req("array A[0:9]\n"));
  EXPECT_EQ(parse.status, serve::Status::CompileError);
  EXPECT_EQ(parse.error_kind, serve::ErrKind::Parse);
  EXPECT_FALSE(parse.error.empty());

  serve::RunResult cached = fx.client.run(make_req("array A[0:9]\n"));
  EXPECT_EQ(cached.status, serve::Status::CompileError);
  EXPECT_TRUE(cached.cache_hit);  // the error itself was cached

  // Unknown input array: compiles fine, faults in execution.
  serve::RunRequest bad_input = make_req(kRotate);
  bad_input.inputs[0].name = "ZZZ";
  serve::RunResult run_err = fx.client.run(std::move(bad_input));
  EXPECT_EQ(run_err.status, serve::Status::RunError);
  EXPECT_FALSE(run_err.error.empty());

  // The session keeps serving after errors.
  EXPECT_EQ(fx.client.run(make_req(kRotate)).status, serve::Status::Ok);
}

TEST(Serve, ExplicitInputValuesAndOutOfOrderWaits) {
  ServeFixture fx;
  serve::RunRequest req = make_req(kRotate);
  req.inputs[0].ramp = false;
  req.inputs[0].values = std::vector<double>(10, 5.0);
  i64 a = fx.client.submit(std::move(req));
  i64 b = fx.client.submit(make_req(kRotate));
  // Waiting b before a exercises the client's result stash.
  serve::RunResult rb = fx.client.wait(b);
  serve::RunResult ra = fx.client.wait(a);
  ASSERT_EQ(ra.status, serve::Status::Ok);
  ASSERT_EQ(rb.status, serve::Status::Ok);
  EXPECT_EQ(ra.stores[0].second, std::vector<double>(10, 5.0));
  EXPECT_EQ(rb.stores[0].second[0], 6.0);  // ramp input, rotated
}

TEST(Serve, TcpLoopbackAndCleanShutdown) {
  serve::ServeOptions opts;
  opts.addr = "127.0.0.1:0";  // port 0: the OS picks, address() tells
  serve::Server server(std::move(opts));
  server.start();
  ASSERT_NE(server.address(), "127.0.0.1:0");

  serve::Client client;
  client.connect(server.address());
  serve::RunResult r = client.run(make_req(kRotate));
  EXPECT_EQ(r.status, serve::Status::Ok) << r.error;

  std::thread waiter([&] { server.wait(); });
  client.shutdown_server();
  waiter.join();  // Shutdown released wait()
  server.stop();
  EXPECT_EQ(server.stats().sessions_active, 0);
}

}  // namespace
