// Communication-schedule throughput: the paper's Section 3.3 rotate (a
// scatter-distributed source feeding a block-distributed target, so
// nearly every read crosses ranks), run for T=200 ping-pong steps at
// P in {4, 16, 64}.
//
//   even step:  A[i] := B[(i + 7) mod n]
//   odd step:   B[i] := A[(i + 7) mod n]
//
// Two engine configurations execute the identical program:
//
//   sched  — the default engine: the inspector compiles each clause's
//            message pattern into a communication schedule on its second
//            execution, and every later step packs positionally into
//            reused buffers and consumes by recorded offset (O(m) per
//            step, allocation-free)
//   tagged — identical engine with comm_schedules off: every step pays
//            the tag-sort/binary-search matching protocol (O(m log m))
//
// Results, statistics, and message matrices must agree between the two;
// the benchmark fails loudly if they do not, or if the sched
// configuration fails to actually replay schedules. Output is a human
// table plus machine-readable JSON (positional argument overrides the
// path, default BENCH_comm.json) recording messages/sec and per-value
// pack/unpack cost; --n=N and --steps=T shrink the problem for CI smoke
// runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;

spmd::Program rotate_program(i64 procs, i64 n, i64 steps) {
  std::string src =
      cat("processors ", procs, ";\n", "array A[0:", n - 1, "];\n",
          "array B[0:", n - 1, "];\n", "distribute A block;\n",
          "distribute B scatter;\n", "forall i in 0:", n - 1,
          " do A[i] := B[(i + 7) mod ", n, "]; od\n");
  spmd::Program p = lang::compile(src);

  // Ping-pong: repeat the compiled clause with A and B swapped on odd
  // steps so every sweep consumes the previous sweep's output.
  prog::Clause even = std::get<prog::Clause>(p.steps[0]);
  prog::Clause odd = even;
  odd.lhs_array = "B";
  for (auto& r : odd.refs) r.array = "A";
  p.steps.clear();
  for (i64 t = 0; t < steps; ++t)
    p.steps.emplace_back(t % 2 == 0 ? even : odd);
  return p;
}

std::vector<double> input(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>((i * 17) % 103);
  return v;
}

struct RunResult {
  double wall_ms = 0.0;
  rt::DistStats stats;
  rt::PathCounters paths;
  rt::CommStats comm;
  std::vector<double> a, b;
  std::vector<std::vector<i64>> matrix;
};

RunResult run_engine(const spmd::Program& p, i64 n,
                     rt::EngineOptions engine) {
  rt::DistMachine m(p, {}, {}, engine);
  m.load("B", input(n));
  auto t0 = std::chrono::steady_clock::now();
  m.run();
  auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.stats = m.stats();
  r.paths = m.path_counters();
  r.comm = m.comm_stats();
  r.a = m.gather("A");
  r.b = m.gather("B");
  r.matrix = m.message_matrix();
  return r;
}

bool stats_equal(const rt::DistStats& x, const rt::DistStats& y) {
  return x.messages == y.messages && x.bulk_messages == y.bulk_messages &&
         x.local_reads == y.local_reads &&
         x.remote_reads == y.remote_reads &&
         x.iterations == y.iterations && x.tests == y.tests &&
         x.steps == y.steps && x.sim_time == y.sim_time;
}

}  // namespace

int main(int argc, char** argv) {
  i64 n = 4096;
  i64 steps = 200;
  const char* json_path = "BENCH_comm.json";
  for (int k = 1; k < argc; ++k) {
    if (std::strncmp(argv[k], "--n=", 4) == 0) {
      n = std::atoll(argv[k] + 4);
    } else if (std::strncmp(argv[k], "--steps=", 8) == 0) {
      steps = std::atoll(argv[k] + 8);
    } else {
      json_path = argv[k];
    }
  }
  if (n < 8 || steps < 6) {
    std::fprintf(stderr, "usage: %s [--n=N] [--steps=T] [out.json]\n",
                 argv[0]);
    return 1;
  }

  std::printf(
      "=== communication throughput: rotate, n=%lld, T=%lld ===\n",
      (long long)n, (long long)steps);
  std::printf("%6s %10s %10s %9s %14s %11s %9s\n", "P", "sched-ms",
              "tagged-ms", "speedup", "msgs/sec", "pack-ns/val",
              "sched-hit");

  std::string json = "{\n  \"bench\": \"comm_throughput\",\n";
  json += cat("  \"n\": ", n, ",\n  \"steps\": ", steps,
              ",\n  \"configs\": [\n");

  bool ok = true;
  bool first = true;
  for (i64 procs : {4, 16, 64}) {
    spmd::Program p = rotate_program(procs, n, steps);

    rt::EngineOptions sched;  // defaults: schedules compiled and replayed
    rt::EngineOptions tagged = sched;
    tagged.comm_schedules = false;

    RunResult s = run_engine(p, n, sched);
    RunResult t = run_engine(p, n, tagged);

    if (s.a != t.a || s.b != t.b) {
      std::printf("  !! RESULT MISMATCH at P=%lld\n", (long long)procs);
      ok = false;
    }
    if (!stats_equal(s.stats, t.stats) || s.matrix != t.matrix) {
      std::printf(
          "  !! STATS MISMATCH at P=%lld\n    sched:  %s\n    tagged: %s\n",
          (long long)procs, s.stats.str().c_str(), t.stats.str().c_str());
      ok = false;
    }
    // Two alternating clauses: each records its schedule on its second
    // execution and replays every one after that.
    if (s.comm.sched_builds != 2 || s.comm.sched_hits != steps - 4 ||
        s.paths.sched == 0) {
      std::printf("  !! SCHEDULES NOT REPLAYED at P=%lld (%s)\n",
                  (long long)procs, s.comm.str().c_str());
      ok = false;
    }
    if (t.comm.sched_hits != 0 || t.paths.sched != 0) {
      std::printf("  !! TAGGED CONFIG REPLAYED SCHEDULES at P=%lld\n",
                  (long long)procs);
      ok = false;
    }

    double speedup = s.wall_ms > 0.0 ? t.wall_ms / s.wall_ms : 0.0;
    double mps = s.wall_ms > 0.0
                     ? static_cast<double>(s.stats.messages) /
                           (s.wall_ms / 1000.0)
                     : 0.0;
    i64 moved = s.comm.packed_values + s.comm.unpacked_values;
    double pack_ns =
        moved > 0 ? s.wall_ms * 1e6 / static_cast<double>(moved) : 0.0;
    std::printf("%6lld %10.1f %10.1f %8.2fx %14s %11.1f %9lld\n",
                (long long)procs, s.wall_ms, t.wall_ms, speedup,
                with_commas((i64)mps).c_str(), pack_ns,
                (long long)s.comm.sched_hits);

    if (!first) json += ",\n";
    first = false;
    json += cat("    {\"procs\": ", procs, ", \"wall_ms_sched\": ",
                s.wall_ms, ", \"wall_ms_tagged\": ", t.wall_ms,
                ", \"speedup\": ", speedup, ", \"msgs_per_sec\": ", mps,
                ", \"pack_unpack_ns\": ", pack_ns,
                ", \"messages\": ", s.stats.messages,
                ", \"sched_builds\": ", s.comm.sched_builds,
                ", \"sched_hits\": ", s.comm.sched_hits,
                ", \"packed_values\": ", s.comm.packed_values,
                ", \"unpacked_values\": ", s.comm.unpacked_values, "}");
  }
  json += "\n  ]\n}\n";

  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::printf("\n!! could not write %s\n", json_path);
    ok = false;
  }

  std::printf(
      "\nsched = inspector/executor communication schedules (default);\n"
      "tagged = per-step tag matching. Results, counters, and message\n"
      "matrices are verified identical; only wall clock differs. The\n"
      "speedup column is the steady-state receive-path win (O(m log m)\n"
      "tag matching vs O(m) positional replay).\n");
  return ok ? 0 : 1;
}
