// Figure 2 reproduction: ownership maps of the three decompositions over
// 15 elements and 4 processors, printed in the paper's layout and checked
// against the figure literally.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "decomp/decomp1d.hpp"

namespace {

using vcal::i64;
using vcal::decomp::Decomp1D;

void print_map(const char* title, const Decomp1D& d,
               const std::vector<i64>& expect, bool* ok) {
  std::printf("%-22s", title);
  for (i64 i = 0; i < d.n(); ++i) std::printf("%3lld", (long long)i);
  std::printf("\n%-22s", "  processor");
  for (i64 i = 0; i < d.n(); ++i)
    std::printf("%3lld", (long long)d.proc(i));
  std::printf("\n%-22s", "  local address");
  for (i64 i = 0; i < d.n(); ++i)
    std::printf("%3lld", (long long)d.local(i));
  std::printf("\n");
  for (i64 i = 0; i < d.n(); ++i) {
    if (d.proc(i) != expect[static_cast<std::size_t>(i)]) {
      std::printf("  MISMATCH at element %lld\n", (long long)i);
      *ok = false;
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 2: data decompositions (15 elements, 4 processors) "
      "===\n\n");
  bool ok = true;

  // (a) block/scatter BS(2)
  print_map("(a) block/scatter b=2", Decomp1D::block_scatter(15, 4, 2),
            {0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3}, &ok);
  // (b) block (b = ceil(15/4) = 4)
  print_map("(b) block", Decomp1D::block(15, 4),
            {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3}, &ok);
  // (c) scatter
  print_map("(c) scatter", Decomp1D::scatter(15, 4),
            {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2}, &ok);

  std::printf("figure check: %s\n",
              ok ? "all three maps match the paper" : "MISMATCH");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
