#include "spmd/kernel.hpp"

#include <algorithm>

#include "fn/classify.hpp"
#include "fn/sym.hpp"
#include "support/error.hpp"

namespace vcal::spmd {

namespace {

// Postorder flattening: children first, left before right, so the value
// stack combines operands in exactly the interpreter's order.
void flatten(const prog::ExprPtr& e, std::vector<ExprOp>& ops, int& depth,
             int& max_depth) {
  require(e != nullptr, "CompiledExpr: null Expr node");
  auto push = [&](ExprOp::Code code, int arg, double num) {
    ops.push_back({code, arg, num});
    ++depth;
    max_depth = std::max(max_depth, depth);
  };
  auto binary = [&](ExprOp::Code code) {
    flatten(e->lhs, ops, depth, max_depth);
    flatten(e->rhs, ops, depth, max_depth);
    ops.push_back({code, 0, 0.0});
    --depth;
  };
  switch (e->kind) {
    case prog::Expr::Kind::Number:
      push(ExprOp::Code::PushNum, 0, e->number);
      break;
    case prog::Expr::Kind::Ref:
      require(e->ref >= 0, "CompiledExpr: ref leaf without index");
      push(ExprOp::Code::PushRef, e->ref, 0.0);
      break;
    case prog::Expr::Kind::Loop:
      require(e->ref >= 0, "CompiledExpr: loop leaf without index");
      push(ExprOp::Code::PushLoop, e->ref, 0.0);
      break;
    case prog::Expr::Kind::Add:
      binary(ExprOp::Code::Add);
      break;
    case prog::Expr::Kind::Sub:
      binary(ExprOp::Code::Sub);
      break;
    case prog::Expr::Kind::Mul:
      binary(ExprOp::Code::Mul);
      break;
    case prog::Expr::Kind::Div:
      binary(ExprOp::Code::Div);
      break;
    case prog::Expr::Kind::Neg:
      flatten(e->lhs, ops, depth, max_depth);
      ops.push_back({ExprOp::Code::Neg, 0, 0.0});
      break;
  }
}

}  // namespace

CompiledExpr CompiledExpr::compile(const prog::ExprPtr& e) {
  CompiledExpr out;
  int depth = 0;
  flatten(e, out.ops_, depth, out.stack_need_);
  require(depth == 1, "CompiledExpr: unbalanced flattening");
  return out;
}

ClauseKernel ClauseKernel::compile(const prog::Clause& clause) {
  ClauseKernel k;
  k.rhs_ = CompiledExpr::compile(clause.rhs);
  int need = k.rhs_.stack_need();
  if (clause.guard) {
    CompiledGuard g;
    g.lhs = CompiledExpr::compile(clause.guard->lhs);
    g.rhs = CompiledExpr::compile(clause.guard->rhs);
    g.cmp = clause.guard->cmp;
    need = std::max(need,
                    std::max(g.lhs.stack_need(), g.rhs.stack_need()));
    k.guard_ = std::move(g);
  }
  k.stack_need_ = std::max(need, 1);

  auto lower = [&](const std::vector<prog::Subscript>& subs) {
    std::vector<AffineSub> out;
    out.reserve(subs.size());
    for (const prog::Subscript& s : subs) {
      AffineSub a;
      if (s.loop_index < 0) {
        a.c = fn::eval(s.expr, 0);
      } else {
        fn::IndexFn f = fn::classify(s.expr);
        if (f.cls() == fn::FnClass::Constant) {
          a.c = f.const_value();
        } else if (f.cls() == fn::FnClass::Affine) {
          a.loop = s.loop_index;
          a.a = f.affine_a();
          a.c = f.affine_c();
        } else {
          // AffineMod / Monotone / Opaque: no affine fast path.
          k.affine_ = false;
        }
      }
      out.push_back(a);
    }
    return out;
  };
  k.lhs_subs_ = lower(clause.lhs_subs);
  k.ref_subs_.reserve(clause.refs.size());
  for (const prog::ArrayRef& r : clause.refs)
    k.ref_subs_.push_back(lower(r.subs));

  // message_tag(r, vals) = dense(vals)*(nrefs+1) + r with dense the
  // row-major fold over the loop ranges; factor the fold into per-dim
  // weights so the tag is a dot product.
  const i64 nrefs1 = static_cast<i64>(clause.refs.size()) + 1;
  const std::size_t nd = clause.loops.size();
  k.tag_w_.assign(nd, 0);
  i64 w = 1;
  for (std::size_t d = nd; d-- > 0;) {
    const prog::LoopDim& l = clause.loops[d];
    k.tag_w_[d] = w * nrefs1;
    k.tag_base_ -= l.lo * k.tag_w_[d];
    w *= l.hi - l.lo + 1;
  }
  return k;
}

ArrayAddr make_local_addr(const decomp::ArrayDesc& desc, i64 rank) {
  if (desc.is_replicated()) return make_dense_addr(desc);
  ArrayAddr aa;
  aa.desc = &desc;
  aa.coords = desc.decomp().grid().coords(rank);
  std::vector<i64> shape = desc.decomp().local_shape(rank);
  const int nd = desc.ndims();
  aa.weights.assign(static_cast<std::size_t>(nd), 1);
  for (int d = nd - 2; d >= 0; --d)
    aa.weights[static_cast<std::size_t>(d)] =
        aa.weights[static_cast<std::size_t>(d + 1)] *
        shape[static_cast<std::size_t>(d + 1)];
  return aa;
}

ArrayAddr make_dense_addr(const decomp::ArrayDesc& desc) {
  ArrayAddr aa;
  aa.desc = &desc;
  aa.dense = true;
  const int nd = desc.ndims();
  aa.weights.assign(static_cast<std::size_t>(nd), 1);
  for (int d = nd - 2; d >= 0; --d)
    aa.weights[static_cast<std::size_t>(d)] =
        aa.weights[static_cast<std::size_t>(d + 1)] * desc.size(d + 1);
  return aa;
}

namespace {

// Narrows [*klo, *khi] to the ks with vlo <= v0 + k*dv <= vhi.
void clamp_interval(i64 v0, i64 dv, i64 vlo, i64 vhi, i64* klo, i64* khi) {
  if (dv == 0) {
    if (!in_range(v0, vlo, vhi)) {
      *klo = 0;
      *khi = -1;
    }
    return;
  }
  if (dv > 0) {
    *klo = std::max(*klo, ceildiv(vlo - v0, dv));
    *khi = std::min(*khi, floordiv(vhi - v0, dv));
  } else {
    *klo = std::max(*klo, ceildiv(vhi - v0, dv));
    *khi = std::min(*khi, floordiv(vlo - v0, dv));
  }
}

}  // namespace

bool strided_run(const ArrayAddr& aa, const i64* g0, const i64* dg,
                 i64 count, StridedRun* out) {
  const decomp::ArrayDesc& desc = *aa.desc;
  const int nd = desc.ndims();
  if (count <= 0) return false;
  i64 klo = 0, khi = count - 1;
  i64 stride = 0;

  // Pass 1: intersect the per-dimension bounds/ownership k-intervals and
  // accumulate the local-address stride. Every Decomp1D kind is an
  // instance of block-scatter BS(b): proc(v) = (v div b) mod P and
  // local(v) = (v div bP)*b + v mod b, so one uniform analysis covers
  // block (b = ceil(n/P)), scatter (b = 1), block-scatter, and
  // non-distributed "*" dimensions (P = 1).
  for (int d = 0; d < nd; ++d) {
    const i64 v0 = g0[d] - desc.lo(d);
    const i64 dv = count == 1 ? 0 : dg[d];
    const i64 n = desc.size(d);
    clamp_interval(v0, dv, 0, n - 1, &klo, &khi);
    if (klo > khi) return false;
    i64 lstride;
    if (aa.dense || desc.is_replicated()) {
      lstride = dv;
    } else {
      const decomp::Decomp1D& dd = desc.decomp().dim(d);
      const i64 b = dd.block_size();
      const i64 P = dd.procs();
      const i64 period = b * P;
      const i64 t = aa.coords[static_cast<std::size_t>(d)];
      if (emod(dv, period) == 0) {
        // The owner is constant along the progression: v div b advances
        // by dv/b per step, a multiple of P.
        if (emod(floordiv(v0, b), P) != t) return false;  // never local
        lstride = (dv / period) * b;
      } else {
        // Irregular stride: keep the intersection with the first block
        // owned by t that the progression meets; the remainder of the
        // run (other cycles of a block-cyclic layout) stays per-element.
        const i64 va = v0 + klo * dv;
        const i64 start_blk = floordiv(va, b);
        const i64 blk = dv > 0 ? start_blk + emod(t - start_blk, P)
                               : start_blk - emod(start_blk - t, P);
        clamp_interval(v0, dv, blk * b, blk * b + b - 1, &klo, &khi);
        if (klo > khi) return false;
        lstride = dv;
      }
    }
    stride += lstride * aa.weights[static_cast<std::size_t>(d)];
  }

  // Pass 2: the base address at k = klo, through the same local() map
  // the per-element path uses.
  i64 addr0 = 0;
  for (int d = 0; d < nd; ++d) {
    const i64 dv = count == 1 ? 0 : dg[d];
    const i64 v = g0[d] - desc.lo(d) + klo * dv;
    i64 lc;
    if (aa.dense || desc.is_replicated())
      lc = v;
    else
      lc = desc.decomp().dim(d).local(v);
    addr0 += lc * aa.weights[static_cast<std::size_t>(d)];
  }

  out->k_lo = klo;
  out->k_hi = khi;
  out->addr0 = addr0;
  out->stride = stride;
  return true;
}

std::shared_ptr<const ClauseKernel> KernelCache::get(
    const prog::Clause& clause) {
  {
    std::lock_guard<std::mutex> lock(m_);
    auto it = map_.find(&clause);
    if (it != map_.end()) {
      ++counters_.hits;
      return it->second;
    }
  }
  // Compile outside the lock; first insert wins a racing build.
  auto kern = std::make_shared<const ClauseKernel>(
      ClauseKernel::compile(clause));
  std::lock_guard<std::mutex> lock(m_);
  ++counters_.compiles;
  auto [it, inserted] = map_.emplace(&clause, std::move(kern));
  if (!inserted) ++counters_.hits;
  return it->second;
}

KernelCache::Counters KernelCache::counters() const {
  std::lock_guard<std::mutex> lock(m_);
  return counters_;
}

}  // namespace vcal::spmd
