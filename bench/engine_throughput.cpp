// Fast-path execution engine throughput: the iterative relaxation kernel
// that motivates every optimization in this repository, run for T=200
// ping-pong sweeps at P in {4, 16, 64}.
//
//   even step:  A[i] := (B[i-1] + B[i+1]) / 2
//   odd step:   B[i] := (A[i-1] + A[i+1]) / 2
//
// Two engine configurations execute the identical program:
//
//   fast  — the default engine: thread pool, per-(src,dst) bulk message
//           aggregation, clause-plan caching, scratch reuse
//   slow  — threads = 1, plan cache off: every step replans its clause
//           and runs ranks serially. Note this still rides the engine's
//           allocation-free data path (bulk channels, hoisted store
//           rows), so the fast/slow ratio isolates pool + cache only;
//           cross-build comparisons against older engines use the
//           recorded wall_ms / iters_per_sec trajectory instead.
//
// Results and all deterministic statistics must agree between the two;
// the benchmark fails loudly if they do not. Output is both a human
// table and a machine-readable BENCH_engine.json (argv[1] overrides the
// path) so successive PRs can track the perf trajectory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;

spmd::Program relaxation_program(i64 procs, i64 n, i64 steps) {
  std::string src =
      cat("processors ", procs, ";\n", "array A[0:", n - 1, "];\n",
          "array B[0:", n - 1, "];\n", "distribute A block;\n",
          "distribute B block;\n", "forall i in 1:", n - 2,
          " do A[i] := (B[i-1] + B[i+1])/2; od\n");
  spmd::Program p = lang::compile(src);

  // Ping-pong: repeat the compiled clause with A and B swapped on odd
  // steps so every sweep consumes the previous sweep's output.
  prog::Clause even = std::get<prog::Clause>(p.steps[0]);
  prog::Clause odd = even;
  odd.lhs_array = "B";
  for (auto& r : odd.refs) r.array = "A";
  p.steps.clear();
  for (i64 t = 0; t < steps; ++t)
    p.steps.emplace_back(t % 2 == 0 ? even : odd);
  return p;
}

std::vector<double> input(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>((i * 13) % 101);
  return v;
}

struct RunResult {
  double wall_ms = 0.0;
  rt::DistStats stats;
  std::vector<double> a, b;
  i64 cache_hits = 0;
  i64 cache_misses = 0;
};

RunResult run_engine(const spmd::Program& p, i64 n,
                     rt::EngineOptions engine) {
  rt::DistMachine m(p, {}, {}, engine);
  m.load("B", input(n));
  auto t0 = std::chrono::steady_clock::now();
  m.run();
  auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.stats = m.stats();
  r.a = m.gather("A");
  r.b = m.gather("B");
  r.cache_hits = m.plan_cache().hits();
  r.cache_misses = m.plan_cache().misses();
  return r;
}

bool stats_equal(const rt::DistStats& x, const rt::DistStats& y) {
  return x.messages == y.messages && x.bulk_messages == y.bulk_messages &&
         x.local_reads == y.local_reads &&
         x.remote_reads == y.remote_reads &&
         x.iterations == y.iterations && x.tests == y.tests &&
         x.steps == y.steps && x.sim_time == y.sim_time;
}

}  // namespace

int main(int argc, char** argv) {
  const i64 n = 4096;
  const i64 steps = 200;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_engine.json";

  std::printf(
      "=== execution-engine throughput: relaxation, n=%lld, T=%lld ===\n",
      (long long)n, (long long)steps);
  std::printf("%6s %12s %12s %9s %12s %12s %12s %11s\n", "P", "fast-ms",
              "slow-ms", "speedup", "iters/sec", "messages", "bulk-msgs",
              "cache-hits");

  std::string json = "{\n  \"bench\": \"engine_throughput\",\n";
  json += cat("  \"n\": ", n, ",\n  \"steps\": ", steps,
              ",\n  \"configs\": [\n");

  bool ok = true;
  bool first = true;
  for (i64 procs : {4, 16, 64}) {
    spmd::Program p = relaxation_program(procs, n, steps);

    rt::EngineOptions fast;  // defaults: pool, cache, aggregation
    rt::EngineOptions slow;
    slow.threads = 1;
    slow.cache_plans = false;

    RunResult f = run_engine(p, n, fast);
    RunResult s = run_engine(p, n, slow);

    if (f.a != s.a || f.b != s.b) {
      std::printf("  !! RESULT MISMATCH at P=%lld\n", (long long)procs);
      ok = false;
    }
    if (!stats_equal(f.stats, s.stats)) {
      std::printf("  !! STATS MISMATCH at P=%lld\n    fast: %s\n    slow: %s\n",
                  (long long)procs, f.stats.str().c_str(),
                  s.stats.str().c_str());
      ok = false;
    }
    // Aggregation bound: per clause step at most P*(P-1) bulk messages,
    // independent of n.
    if (f.stats.bulk_messages > steps * procs * (procs - 1)) {
      std::printf("  !! BULK BOUND VIOLATED at P=%lld\n", (long long)procs);
      ok = false;
    }

    double speedup = f.wall_ms > 0.0 ? s.wall_ms / f.wall_ms : 0.0;
    double ips = f.wall_ms > 0.0
                     ? static_cast<double>(f.stats.iterations) /
                           (f.wall_ms / 1000.0)
                     : 0.0;
    std::printf("%6lld %12.1f %12.1f %8.2fx %12s %12s %12s %11s\n",
                (long long)procs, f.wall_ms, s.wall_ms, speedup,
                with_commas((i64)ips).c_str(),
                with_commas(f.stats.messages).c_str(),
                with_commas(f.stats.bulk_messages).c_str(),
                with_commas(f.cache_hits).c_str());

    if (!first) json += ",\n";
    first = false;
    json += cat("    {\"procs\": ", procs, ", \"wall_ms_fast\": ",
                f.wall_ms, ", \"wall_ms_slow\": ", s.wall_ms,
                ", \"speedup\": ", speedup, ", \"iters_per_sec\": ", ips,
                ", \"messages\": ", f.stats.messages,
                ", \"bulk_messages\": ", f.stats.bulk_messages,
                ", \"plan_cache_hits\": ", f.cache_hits,
                ", \"plan_cache_misses\": ", f.cache_misses,
                ", \"sim_time\": ", f.stats.sim_time, "}");
  }
  json += "\n  ]\n}\n";

  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::printf("\n!! could not write %s\n", json_path);
    ok = false;
  }

  std::printf(
      "\nfast = thread pool + bulk aggregation + plan cache + scratch "
      "reuse;\nslow = serial ranks, plans rebuilt every step (same "
      "allocation-free data\npath). Results and counters are verified "
      "identical; only wall clock\ndiffers. Compare iters/sec across "
      "builds for engine-to-engine speedups.\n");
  return ok ? 0 : 1;
}
