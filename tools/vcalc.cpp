// vcalc — command-line driver for the V-cal compiler and simulators.
//
//   vcalc [options] program.vexl
//
//   --target=dist|shared|seq   execute on the chosen machine (default dist)
//   --emit=mpi|omp|trace|ir    print generated source / derivation instead
//                              of executing
//   --naive                    disable the Table I optimizations
//                              (run-time resolution baseline)
//   --elide-barriers           enable the footnote-1 barrier analysis
//                              (shared target)
//   --init NAME                fill NAME with the ramp 0,1,2,... before
//                              running (repeatable)
//   --print NAME               dump NAME after the run (repeatable)
//   --stats                    print machine statistics
//   --verify                   differential conformance mode: run the
//                              seeded random corpus (or the given
//                              program) through every machine and
//                              engine configuration, checking
//                              bit-identical results and statistics
//                              invariants, plus the fault-injection
//                              smoke (docs/testing.md)
//   --iters N                  corpus size for --verify (default 100)
//   --seed S                   corpus seed for --verify (default 1);
//                              replay a reported failure with
//                              --iters 1 --seed <failing seed>
//
// Exit status: 0 on success, 1 on usage errors, 2 on compile errors,
// 3 on execution faults (including conformance failures).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "emit/c_mpi.hpp"
#include "emit/c_openmp.hpp"
#include "emit/paper_notation.hpp"
#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/seq_executor.hpp"
#include "rt/shared_machine.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace vcal;

struct Options {
  std::string target = "dist";
  std::string emit;
  bool naive = false;
  bool elide_barriers = false;
  bool stats = false;
  bool verify = false;
  int iters = 100;
  std::uint64_t seed = 1;
  std::vector<std::string> init;
  std::vector<std::string> print;
  std::string file;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--target=dist|shared|seq] "
               "[--emit=mpi|omp|trace|ir] [--naive] [--elide-barriers] "
               "[--init NAME]... [--print NAME]... [--stats] "
               "program.vexl\n"
               "       %s --verify [--iters N] [--seed S] "
               "[program.vexl]\n",
               argv0, argv0);
  return 1;
}

int run_verify(const Options& opt) {
  using vcal::verify::Oracle;
  if (!opt.file.empty()) {
    std::ifstream in(opt.file);
    if (!in) {
      std::fprintf(stderr, "vcalc: cannot open %s\n", opt.file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      vcal::verify::CheckResult r =
          Oracle::check_source(buf.str(), opt.seed);
      std::printf("verify %s: %s\n", opt.file.c_str(), r.str().c_str());
      return r.ok ? 0 : 3;
    } catch (const Error& e) {
      std::fprintf(stderr, "vcalc: %s\n", e.what());
      return 2;
    }
  }
  vcal::verify::OracleOptions oo;
  oo.iters = opt.iters;
  oo.seed = opt.seed;
  vcal::verify::OracleReport rep = Oracle::run_corpus(oo);
  std::printf("%s\n", rep.str().c_str());
  vcal::verify::CheckResult faults = Oracle::check_faults();
  std::printf("verify faults: %s\n", faults.str().c_str());
  return rep.ok && faults.ok ? 0 : 3;
}

std::vector<double> ramp(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>(i);
  return v;
}

void dump(const std::string& name, const std::vector<double>& data) {
  std::printf("%s =", name.c_str());
  for (double v : data) std::printf(" %g", v);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int k = 1; k < argc; ++k) {
    std::string arg = argv[k];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--target=", 0) == 0) {
      opt.target = value("--target=");
    } else if (arg.rfind("--emit=", 0) == 0) {
      opt.emit = value("--emit=");
    } else if (arg == "--naive") {
      opt.naive = true;
    } else if (arg == "--elide-barriers") {
      opt.elide_barriers = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--iters" && k + 1 < argc) {
      opt.iters = std::atoi(argv[++k]);
      if (opt.iters <= 0) return usage(argv[0]);
    } else if (arg == "--seed" && k + 1 < argc) {
      opt.seed = std::strtoull(argv[++k], nullptr, 10);
    } else if (arg == "--init" && k + 1 < argc) {
      opt.init.push_back(argv[++k]);
    } else if (arg == "--print" && k + 1 < argc) {
      opt.print.push_back(argv[++k]);
    } else if (arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else if (opt.file.empty()) {
      opt.file = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.verify) return run_verify(opt);
  if (opt.file.empty()) return usage(argv[0]);

  std::ifstream in(opt.file);
  if (!in) {
    std::fprintf(stderr, "vcalc: cannot open %s\n", opt.file.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  spmd::Program program;
  try {
    program = lang::compile(buf.str());
  } catch (const Error& e) {
    std::fprintf(stderr, "vcalc: %s\n", e.what());
    return 2;
  }

  if (!opt.emit.empty()) {
    try {
      if (opt.emit == "mpi") {
        std::fputs(emit::emit_mpi_c(program).c_str(), stdout);
      } else if (opt.emit == "omp") {
        std::fputs(emit::emit_openmp_c(program).c_str(), stdout);
      } else if (opt.emit == "ir") {
        std::fputs(program.str().c_str(), stdout);
      } else if (opt.emit == "trace") {
        spmd::ArrayTable arrays = program.arrays;
        for (const spmd::Step& step : program.steps) {
          if (const auto* clause = std::get_if<prog::Clause>(&step)) {
            std::fputs(
                emit::trace_pipeline(*clause, arrays).str().c_str(),
                stdout);
            std::fputs("\n", stdout);
          } else {
            const auto& r = std::get<spmd::RedistStep>(step);
            std::printf("redistribute -> %s\n\n",
                        r.new_desc.str().c_str());
            arrays.insert_or_assign(r.array, r.new_desc);
          }
        }
      } else {
        return usage(argv[0]);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "vcalc: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  gen::BuildOptions build;
  build.force_runtime_resolution = opt.naive;

  try {
    auto init_all = [&](auto& machine) {
      for (const std::string& name : opt.init) {
        auto it = program.arrays.find(name);
        if (it == program.arrays.end())
          throw SemanticError("--init names unknown array " + name);
        machine.load(name, ramp(it->second.total()));
      }
    };
    if (opt.target == "seq") {
      rt::SeqExecutor machine(program);
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.result(name));
    } else if (opt.target == "shared") {
      rt::SharedMachine machine(program, build, {}, opt.elide_barriers);
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.result(name));
      if (opt.stats) {
        std::printf(
            "stats: barriers=%lld elided=%lld iters=%lld tests=%lld "
            "sim-time=%g\n",
            (long long)machine.stats().barriers,
            (long long)machine.stats().barriers_elided,
            (long long)machine.stats().iterations,
            (long long)machine.stats().tests, machine.stats().sim_time);
        std::printf("paths: %s\n", machine.path_counters().str().c_str());
      }
    } else if (opt.target == "dist") {
      rt::DistMachine machine(program, build);
      init_all(machine);
      machine.run();
      for (const std::string& name : opt.print)
        dump(name, machine.gather(name));
      if (opt.stats) {
        std::printf("stats: %s\n", machine.stats().str().c_str());
        std::printf("paths: %s\n", machine.path_counters().str().c_str());
      }
    } else {
      return usage(argv[0]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "vcalc: %s\n", e.what());
    return 3;
  }
  return 0;
}
