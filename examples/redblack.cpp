// Red-black Gauss-Seidel via views.
//
// The classic two-colour relaxation: odd-indexed ("red") points update
// from their even ("black") neighbours, then vice versa. With views the
// colouring is expressed once as an index map — the algorithm text never
// mentions strides again — and the decomposition stays a separate choice.
// Because each half-sweep reads only the *other* colour, the clauses have
// no self-overlap: no snapshots, and on the distributed machine each
// half-sweep is a pure neighbour exchange.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "lang/translate.hpp"
#include "rt/dist_machine.hpp"
#include "rt/seq_executor.hpp"
#include "support/format.hpp"

namespace {

using namespace vcal;

std::string program_text(const std::string& dist, i64 n, int sweeps) {
  // n even; red points 1,3,5,... black points 0,2,4,...
  i64 half = n / 2;
  std::string src = cat("processors 8;\n", "array U[0:", n - 1, "];\n",
                        "distribute U ", dist, ";\n",
                        "view Red[0:", half - 1, "]   = U[2*r + 1];\n",
                        "view Black[0:", half - 1, "] = U[2*b];\n");
  for (int s = 0; s < sweeps; ++s) {
    // Red update: Red[i] = (Black[i] + Black[i+1]) / 2  (interior).
    src += cat("forall i in 0:", half - 2,
               " do Red[i] := (Black[i] + Black[i+1])/2; od\n");
    // Black update: Black[i] = (Red[i-1] + Red[i]) / 2  (interior).
    src += cat("forall i in 1:", half - 1,
               " do Black[i] := (Red[i-1] + Red[i])/2; od\n");
  }
  return src;
}

}  // namespace

int main() {
  const i64 n = 1024;
  const int sweeps = 6;

  std::vector<double> u(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i)
    u[static_cast<std::size_t>(i)] =
        static_cast<double>((i * 29) % 17);

  std::printf(
      "=== red-black Gauss-Seidel via views, n=%lld, %d sweeps, 8 procs "
      "===\n\n",
      (long long)n, sweeps);
  std::printf("%-18s %12s %12s %14s %10s\n", "decomposition", "messages",
              "tests", "sim-time", "residual");

  std::vector<double> reference;
  for (const std::string& dist :
       {std::string("block"), std::string("scatter"),
        std::string("blockscatter(8)")}) {
    spmd::Program p = lang::compile(program_text(dist, n, sweeps));
    rt::DistMachine m(p);
    m.load("U", u);
    m.run();
    if (reference.empty()) {
      rt::SeqExecutor seq(lang::compile(program_text("block", n, sweeps)));
      seq.load("U", u);
      seq.run();
      reference = seq.result("U");
    }
    std::vector<double> result = m.gather("U");
    double residual = 0;
    for (i64 i = 1; i < n - 1; ++i)
      residual = std::max(
          residual,
          std::fabs(result[static_cast<std::size_t>(i)] -
                    (result[static_cast<std::size_t>(i - 1)] +
                     result[static_cast<std::size_t>(i + 1)]) /
                        2));
    bool ok = result == reference;
    std::printf("%-18s %12s %12s %14s %10.4f %s\n", dist.c_str(),
                with_commas(m.stats().messages).c_str(),
                with_commas(m.stats().tests).c_str(),
                with_commas((i64)m.stats().sim_time).c_str(), residual,
                ok ? "" : " !! MISMATCH");
  }
  std::printf(
      "\nThe colouring lives in two view declarations; the sweep text and "
      "the decomposition\nnever mention strides. Gauss-Seidel ordering "
      "emerges from the clause sequence, so\nall targets agree "
      "bit-exactly and the residual drops with every sweep.\n");
  return 0;
}
