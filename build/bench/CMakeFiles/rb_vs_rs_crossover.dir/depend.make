# Empty dependencies file for rb_vs_rs_crossover.
# This may be replaced when dependencies are built.
