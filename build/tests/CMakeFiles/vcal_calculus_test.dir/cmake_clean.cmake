file(REMOVE_RECURSE
  "CMakeFiles/vcal_calculus_test.dir/vcal_calculus_test.cpp.o"
  "CMakeFiles/vcal_calculus_test.dir/vcal_calculus_test.cpp.o.d"
  "vcal_calculus_test"
  "vcal_calculus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcal_calculus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
