// Distributed-memory SPMD target (Sections 2.7 and 2.10 of the paper).
//
// Simulates a message-passing multicomputer with non-blocking sends and
// blocking receives. Execution follows the paper's template: every
// processor first sends the elements it stores that other processors'
// computations need (i in Reside_p \ Modify_p), then walks Modify_p,
// receiving remote operands and updating local elements. Because sends
// are non-blocking and complete before any receive is attempted, the
// template is deadlock-free by construction; a receive that finds no
// matching message therefore indicates an inconsistent schedule pair and
// raises DeadlockError.
//
// The execution engine is the fast path the generated schedules deserve:
// the per-rank loops of every phase run on a thread pool (ranks own
// disjoint counters, mailbox rows, and local buffers; counters merge
// serially in rank order so statistics are bit-identical to the serial
// engine), all elements flowing between one (src, dst) pair in a clause
// are packed into a single sorted bulk message consumed by binary
// search, and clause plans are cached across repeated executions until a
// redistribution bumps the decomposition epoch.
//
// The simulator counts messages, local/remote reads, loop iterations and
// membership tests per rank, and charges them to a CostModel; sim_time is
// the sum over steps of the slowest rank (the SPMD makespan).
//
// Restrictions: '•' (sequential) clauses are rejected on this target —
// the paper notes they induce DOACROSS-style synchronization, which it
// (and we) leave out of scope.
#pragma once

#include <memory>
#include <unordered_map>

#include "gen/optimizer.hpp"
#include "obs/trace.hpp"
#include "rt/cost_model.hpp"
#include "rt/engine_context.hpp"
#include "rt/engine_options.hpp"
#include "rt/fault_plan.hpp"
#include "rt/store.hpp"
#include "spmd/jit.hpp"
#include "spmd/plan_cache.hpp"
#include "spmd/program.hpp"
#include "support/thread_pool.hpp"

namespace vcal::spmd {
class CommSchedule;
}

namespace vcal::rt {

struct DistStats {
  i64 messages = 0;      // element transfers between distinct ranks
  i64 bulk_messages = 0; // aggregated (src,dst) messages carrying them
  i64 redist_messages = 0; // subset of messages moved by redistributions
  i64 local_reads = 0;   // operand reads satisfied locally
  i64 remote_reads = 0;  // operand reads satisfied by a message
                         // (conservation: messages == remote_reads
                         //  + redist_messages)
  i64 iterations = 0;    // loop-body entries, all ranks, all phases
  i64 tests = 0;         // run-time membership tests / probes
  i64 halo_messages = 0; // bulk halo-exchange messages (overlap support)
  i64 halo_values = 0;   // elements carried by halo exchanges
  i64 halo_reads = 0;    // remote reads satisfied from a local halo copy
  i64 steps = 0;         // clauses + redistributions executed
  double sim_time = 0.0; // makespan under the cost model

  std::string str() const;
};

class DistMachine {
 public:
  /// `ctx` owns the plan cache, tracer, and JIT engine this machine
  /// uses; pass null (the one-shot CLI path) and the machine creates a
  /// private context with the same lifetime as itself. `plan_scope`
  /// names the plan-cache lease pool within the context (see
  /// EngineContext::acquire_plans); empty means a private cache.
  explicit DistMachine(spmd::Program program, gen::BuildOptions opts = {},
                       CostModel cost = {}, EngineOptions engine = {},
                       std::shared_ptr<EngineContext> ctx = nullptr,
                       const std::string& plan_scope = {});

  void load(const std::string& name, const std::vector<double>& dense);
  void run();

  /// Arms a fault to be injected when the targeted step executes (see
  /// fault_plan.hpp). Repeatable; faults on distinct steps compose.
  void inject(const FaultPlan& fault) { faults_.push_back(fault); }

  /// How many armed faults actually perturbed a step (a message fault
  /// naming an empty channel is counted as not applied).
  i64 faults_applied() const noexcept { return faults_applied_; }

  /// Scheduler rounds stalled ranks sat out across the run.
  i64 stall_rounds_served() const noexcept { return stall_rounds_; }

  /// Dense image reassembled from the distributed pieces.
  std::vector<double> gather(const std::string& name) const;

  const DistStats& stats() const noexcept { return stats_; }

  /// Plan-cache effectiveness (hits/misses/epoch) for benchmarks.
  const spmd::PlanCache& plan_cache() const noexcept { return *plans_; }

  /// Per-element execution-path tally (fused kernel loop / per-element
  /// kernel / interpreter / schedule replay) accumulated over the run.
  /// Reporting only — never part of DistStats.
  const PathCounters& path_counters() const noexcept { return paths_; }

  /// Communication-schedule accounting: inspector builds, replayed
  /// steps, forced fallbacks, packed/unpacked volumes. Reporting only —
  /// never part of DistStats (the `sched` oracle axis pins that).
  const CommStats& comm_stats() const noexcept { return comm_; }

  /// JIT native-code accounting: compiles, cache reuse, dispatches
  /// through jitted functions, fallbacks to the bytecode kernel.
  /// Reporting only — never part of DistStats (the `jit` oracle axis
  /// pins that).
  const spmd::JitStats& jit_stats() const noexcept { return jit_; }

  /// Per-rank message counts of the last executed step (for tests and
  /// benchmark reporting).
  const std::vector<RankCounters>& last_step_counters() const noexcept {
    return last_counters_;
  }

  /// messages[src][dst] accumulated over the whole run (element messages
  /// only; halo exchanges are reported separately in stats()).
  const std::vector<std::vector<i64>>& message_matrix() const noexcept {
    return message_matrix_;
  }

  /// Pretty-printed message matrix, one row per source rank.
  std::string message_matrix_str() const;

  /// The attached event tracer (EngineOptions::trace); nullptr when
  /// tracing is off. Lanes 0..procs-1 are ranks, lane procs the engine.
  /// Owned by the EngineContext, so it outlives this machine.
  const obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  /// halos[name][rank] maps global index -> cached pre-clause value.
  using HaloTable =
      std::unordered_map<std::string,
                         std::vector<std::unordered_map<i64, double>>>;

  void run_clause(const prog::Clause& clause);
  /// Executor half of the inspector–executor split: replays a compiled
  /// communication schedule (positional pack into the reused comm
  /// buffers, operand gather by recorded offset, live guard/RHS). The
  /// caller has already emitted the control-lane ClauseBegin.
  void run_clause_scheduled(const prog::Clause& clause,
                            const spmd::ClausePlan& plan,
                            const spmd::CommSchedule& sched,
                            spmd::JitState* js, const spmd::JitFns* jfns);

  /// One JIT arming/ dispatch poll for the clause keyed by `key` at the
  /// current epoch. Returns the jitted entry points when ready (and the
  /// owning state via `js`), nullptr while the bytecode kernel should
  /// keep running.
  const spmd::JitFns* jit_poll(const std::string& key,
                               const prog::Clause& clause,
                               const spmd::ClauseKernel& kern,
                               spmd::JitState** js, i64 step_id);
  void run_redistribute(const spmd::RedistStep& step);
  void finish_step(const std::vector<RankCounters>& counters);

  /// Phase 0: refresh halo copies of every overlapped referenced array
  /// with pre-clause values (shared by the tagged and scheduled paths).
  void refresh_halos(const prog::Clause& clause,
                     const spmd::ClausePlan& plan,
                     const std::vector<std::vector<double>>* snap,
                     std::vector<RankCounters>& counters, HaloTable& halos,
                     i64 step_id);

  /// Runs body(rank) for every rank, honoring engine_.threads.
  void for_ranks(i64 n, const std::function<void(i64)>& body);

  /// As for_ranks, but monomorphized: the threads == 1 path calls the
  /// body inline with no std::function wrapper, so scheduled steady
  /// states allocate nothing.
  template <typename F>
  void for_ranks_t(i64 n, F&& body);

  spmd::Program program_;  // arrays table evolves across redistributions
  gen::BuildOptions opts_;
  CostModel cost_;
  EngineOptions engine_;
  std::shared_ptr<EngineContext> ctx_;         // never null after ctor
  std::unique_ptr<support::ThreadPool> pool_;  // owned when threads > 1
  obs::Tracer* tracer_ = nullptr;       // ctx-owned, set when engine_.trace
  PlanLease plans_;                     // leased from ctx_, never empty
  DistStore store_;
  DistStats stats_;
  std::vector<RankCounters> last_counters_;
  std::vector<std::vector<i64>> message_matrix_;
  std::vector<FaultPlan> faults_;
  i64 faults_applied_ = 0;
  i64 stall_rounds_ = 0;
  PathCounters paths_;
  CommStats comm_;
  spmd::JitStats jit_;

  // Per-plan-key JIT state: arming counter, compile status, swapped-in
  // function pointers. A redistribution's epoch bump invalidates the
  // state with the plan that owned it (counted as a fallback when the
  // old state had armed).
  struct JitSlot {
    std::shared_ptr<spmd::JitState> state;
    std::uint64_t epoch = 0;
    bool no_toolchain_noted = false;  // one fallback per key, not per exec
  };
  std::unordered_map<std::string, JitSlot> jit_states_;

  // ---- communication-schedule dispatch state ----
  // Per-program-step memoized plan-cache key (clause.str() computed
  // once, not per execution) and per-key clean-execution counts at the
  // current epoch (schedules are recorded on the second clean pass).
  std::unordered_map<const void*, std::string> step_keys_;
  struct KeySeen {
    std::uint64_t epoch = 0;
    i64 seen = 0;
  };
  std::unordered_map<std::string, KeySeen> key_seen_;

  // Double-buffered, reused channel storage for scheduled steps: one
  // contiguous value buffer per (src, dst) pair, parity-flipped per
  // step. clear() keeps capacity, so steady-state packing is
  // allocation-free.
  std::vector<std::vector<double>> comm_bufs_[2];
  int comm_parity_ = 0;

  // Persistent per-step and per-rank scratch for scheduled replay.
  std::vector<RankCounters> sched_counters_;
  std::vector<PathCounters> sched_pcs_;
  struct ReplayScratch {
    std::vector<i64> vals;
    std::vector<double> refs;
    std::vector<double> stack;
    std::vector<const std::vector<double>*> rows;
    std::vector<const std::unordered_map<i64, double>*> halo_rows;
    std::vector<const double*> bases;  // jitted replay operand bases
  };
  std::vector<ReplayScratch> replay_scratch_;
};

}  // namespace vcal::rt
